"""Security analysis of RRS (paper Section 5, Table 4, Table 1).

Models the optimal adaptive attack of Section 5.3: the attacker
repeatedly picks a random row of the bank, activates it exactly T_RRS
times to force a swap, and repeats — hoping the randomly relocated
activations pile k = T_RH/T_RRS swap-loads onto one physical row within
a single 64 ms refresh window.

Each round is one ball thrown into N = rows-per-bank buckets; the
attacker gets B = A*D/T_RRS balls per window (A = ACT_max, D = the duty
cycle lost to swap streaming). The expected windows until any bucket
collects k balls follows the binomial tail the paper's Equation 3
states:

    AT_iter = 1 / (N * C(B,k) * p^k * (1-p)^(B-k)),   p = 1/N
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.buckets import BucketsAndBalls

# Table 1 of the paper: Row Hammer threshold by DRAM generation.
RH_THRESHOLD_HISTORY: Dict[str, int] = {
    "DDR3 (old)": 139_000,
    "DDR3 (new)": 22_400,
    "DDR4 (old)": 17_500,
    "DDR4 (new)": 10_000,
    "LPDDR4 (old)": 16_800,
    "LPDDR4 (new)": 4_800,
}

WINDOW_SECONDS = 0.064


def duty_cycle(
    t_rrs: int,
    acts_per_window: int = 1_360_000,
    swap_cost_s: float = 2.9e-6,
    window_s: float = WINDOW_SECONDS,
    attacked_banks: int = 1,
) -> float:
    """Fraction of the window a bank can spend activating under attack.

    Each T_RRS activations trigger one ~2.9 us channel-blocking swap;
    solving D = 1 - banks * (A*D/T) * cost / window for D gives the
    self-consistent duty cycle. The paper quotes D ~ 0.925 for the
    single-bank attack and ~0.55 for the all-bank attack.
    """
    if t_rrs <= 0:
        raise ValueError("T_RRS must be positive")
    overhead = attacked_banks * acts_per_window * swap_cost_s / (t_rrs * window_s)
    return 1.0 / (1.0 + overhead)


def _log_binomial_pmf(trials: int, successes: int, probability: float) -> float:
    """log of C(trials, k) * p^k * (1-p)^(trials-k)."""
    if not 0 <= successes <= trials:
        return float("-inf")
    log_comb = (
        math.lgamma(trials + 1)
        - math.lgamma(successes + 1)
        - math.lgamma(trials - successes + 1)
    )
    return (
        log_comb
        + successes * math.log(probability)
        + (trials - successes) * math.log1p(-probability)
    )


def attack_iterations(
    t_rrs: int,
    t_rh: int = 4800,
    rows_per_bank: int = 128 * 1024,
    acts_per_window: int = 1_360_000,
    attacked_banks: int = 1,
    swap_cost_s: float = 2.9e-6,
) -> float:
    """Expected 64 ms iterations until the adaptive attack succeeds
    (paper Equation 3)."""
    if t_rh % t_rrs != 0:
        raise ValueError("T_RH must be an integer multiple of T_RRS")
    k = t_rh // t_rrs
    d = duty_cycle(
        t_rrs,
        acts_per_window=acts_per_window,
        swap_cost_s=swap_cost_s,
        attacked_banks=attacked_banks,
    )
    balls = int(acts_per_window * d / t_rrs)
    p = 1.0 / rows_per_bank
    log_pmf = _log_binomial_pmf(balls, k, p)
    # Expected hot buckets per window across every attacked bank.
    log_expected = math.log(rows_per_bank * attacked_banks) + log_pmf
    return math.exp(-log_expected)


def attack_time_seconds(t_rrs: int, t_rh: int = 4800, **kwargs) -> float:
    """Expected wall-clock time for a successful attack (AT_time)."""
    return attack_iterations(t_rrs, t_rh, **kwargs) * WINDOW_SECONDS


def time_to_failure_probability(
    t_rrs: int,
    probability: float,
    t_rh: int = 4800,
    **kwargs,
) -> float:
    """Attack duration (seconds) at which success probability reaches
    ``probability``.

    Window successes are independent Bernoulli trials with
    p = 1/AT_iter, so P(success within n windows) = 1 - (1-p)^n. This
    is the "how long can I deploy this part" question AT_time's mean
    does not directly answer.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be in (0, 1)")
    p_window = 1.0 / attack_iterations(t_rrs, t_rh, **kwargs)
    windows = math.log1p(-probability) / math.log1p(-min(p_window, 1 - 1e-12))
    return windows * WINDOW_SECONDS


@dataclass(frozen=True)
class MonteCarloValidation:
    """One wide Monte Carlo check of the Eq. 1-3 window model.

    ``measured`` is the empirical fraction of windows in which some
    bucket reached ``target_balls``; ``analytic`` is the union-bound
    binomial tail Table 4 inverts. ``std_error`` is the binomial
    standard error of ``measured`` — at 50K+ trials it is small enough
    that the residual measured-vs-analytic gap is the *model's* error
    (the union bound double-counts multi-hot windows), not noise.
    """

    buckets: int
    balls_per_window: int
    target_balls: int
    trials: int
    hits: int
    measured: float
    analytic: float
    std_error: float

    @property
    def rel_error(self) -> float:
        """|measured - analytic| / analytic (inf when analytic is 0)."""
        if self.analytic == 0.0:
            return float("inf")
        return abs(self.measured - self.analytic) / self.analytic


def validate_window_model(
    buckets: int = 512,
    balls_per_window: int = 512,
    target_balls: int = 4,
    trials: int = 50_000,
    seed: int = 9,
    chunk_draws: int = 4_000_000,
) -> MonteCarloValidation:
    """Wide Monte Carlo validation of the window-success model.

    Runs the vectorized buckets-and-balls engine (chunked 2-D draws,
    bit-identical to the scalar reference stream) for ``trials``
    windows and compares against the analytic probability. The trial
    budget that used to take minutes in the scalar loop runs in a
    couple of seconds, so Table 4 validation can afford 50K-100K
    trials — enough to resolve rare-event points (k >= 6) where a few
    hundred trials would see single-digit hit counts.
    """
    experiment = BucketsAndBalls(
        buckets=buckets,
        balls_per_window=balls_per_window,
        target_balls=target_balls,
        seed=seed,
    )
    measured = experiment.success_probability(trials, chunk_draws=chunk_draws)
    hits = round(measured * trials)
    std_error = math.sqrt(max(measured * (1.0 - measured), 0.0) / trials)
    return MonteCarloValidation(
        buckets=buckets,
        balls_per_window=balls_per_window,
        target_balls=target_balls,
        trials=trials,
        hits=hits,
        measured=measured,
        analytic=experiment.analytic_window_probability(),
        std_error=std_error,
    )


@dataclass(frozen=True)
class AttackModel:
    """One Table 4 row: threshold, iterations, and time."""

    t_rrs: int
    k: int
    iterations: float
    seconds: float


def table4_rows(
    t_rh: int = 4800,
    k_values: tuple = (5, 6, 7),
    **kwargs,
) -> List[AttackModel]:
    """The paper's Table 4: attack cost for T_RRS in {960, 800, 685}."""
    rows = []
    for k in k_values:
        t_rrs = t_rh // k
        # Match the paper's rounding: T must divide T_RH for Eq. 3, so
        # evaluate at the exact k with T = T_RH/k.
        iterations = attack_iterations(t_rrs, t_rrs * k, **kwargs)
        rows.append(
            AttackModel(
                t_rrs=t_rrs,
                k=k,
                iterations=iterations,
                seconds=iterations * WINDOW_SECONDS,
            )
        )
    return rows
