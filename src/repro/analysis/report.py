"""Plain-text table rendering shared by the benchmark harness.

Benches print the same rows/series the paper's tables and figures
report; this keeps the formatting uniform and diff-friendly for
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)
