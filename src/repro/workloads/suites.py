"""The paper's workload suite (Table 3) plus the low-activity remainder.

The paper evaluates 78 workloads and tabulates the 28 that have at least
one row with 800+ activations per 64 ms window (Table 3, reproduced in
``WORKLOAD_TABLE`` verbatim). The other 50 never trigger a row swap;
we synthesize them with plausible footprint/MPKI values and zero
ACT-800+ rows so suite-wide averages are taken over the same population
size the paper uses.

Mixed workloads (mix1-mix6) combine randomly selected benchmarks; their
``components`` name the per-core traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class WorkloadSpec:
    """Calibration targets for one workload (the paper's Table 3 row).

    ``ipc_hint`` is this simulator's measured baseline IPC (from
    ``scripts/calibrate_ipc.py``); the synthetic generators use it to
    convert per-window activation targets into per-access hot-row
    probabilities. Zero means "unknown, use the MPKI formula".
    """

    name: str
    suite: str
    footprint_gb: float
    mpki: float
    act800_rows: int  # rows with >800 ACTs per 64ms window (whole system)
    components: Tuple[str, ...] = ()  # non-empty only for mixes
    ipc_hint: float = 0.0

    @property
    def is_mix(self) -> bool:
        """True for the 6 mixed workloads."""
        return bool(self.components)

    def component_for_core(self, core_id: int) -> "WorkloadSpec":
        """The workload one core replays.

        Mix components cycle round-robin over the cores; every other
        workload runs rate-mode (each core replays the same spec).
        """
        if not self.components:
            return self
        return get_workload(self.components[core_id % len(self.components)])


def _w(name, suite, footprint, mpki, act800, ipc=0.0):
    return WorkloadSpec(
        name=name,
        suite=suite,
        footprint_gb=footprint,
        mpki=mpki,
        act800_rows=act800,
        ipc_hint=ipc,
    )


# Table 3 of the paper, verbatim: the 28 workloads with ACT-800+ rows.
WORKLOAD_TABLE: List[WorkloadSpec] = [
    _w("hmmer", "SPEC2006", 0.01, 0.84, 1675, ipc=3.76),
    _w("bzip2", "SPEC2006", 2.41, 5.57, 1150, ipc=1.52),
    _w("h264", "SPEC2006", 0.05, 0.52, 1136, ipc=3.89),
    _w("calculix", "SPEC2006", 0.16, 1.12, 932, ipc=3.62),
    _w("gcc", "SPEC2006", 0.09, 4.42, 818, ipc=1.85),
    _w("zeusmp", "SPEC2006", 0.55, 2.00, 405, ipc=3.06),
    _w("astar", "SPEC2006", 0.04, 1.04, 352, ipc=3.68),
    _w("sphinx", "SPEC2006", 0.13, 12.90, 242, ipc=0.83),
    _w("mummer", "BIOBENCH", 2.17, 19.13, 192, ipc=0.64),
    _w("ferret", "PARSEC", 0.79, 5.67, 132, ipc=1.59),
    _w("gobmk", "SPEC2006", 0.2, 1.17, 79, ipc=3.59),
    _w("blender_17", "SPEC2017", 0.24, 1.53, 53, ipc=3.38),
    _w("freq", "PARSEC", 0.59, 2.89, 44, ipc=2.47),
    _w("stream", "PARSEC", 0.63, 3.48, 41, ipc=2.23),
    _w("gcc_17", "SPEC2017", 0.36, 0.55, 38, ipc=3.89),
    _w("swapt", "PARSEC", 0.76, 3.52, 37, ipc=2.17),
    _w("black", "PARSEC", 0.55, 3.08, 37, ipc=2.35),
    _w("comm1", "COMMERCIAL", 1.55, 5.93, 19, ipc=1.5),
    _w("xz_17", "SPEC2017", 0.64, 5.12, 12, ipc=1.67),
    _w("comm2", "COMMERCIAL", 3.37, 6.14, 8, ipc=1.47),
    _w("omnetpp_17", "SPEC2017", 1.55, 9.81, 7, ipc=1.02),
    _w("fluid", "PARSEC", 0.99, 2.70, 7, ipc=2.61),
    _w("omnetpp", "SPEC2006", 1.1, 17.24, 5, ipc=0.69),
    _w("face", "PARSEC", 1.1, 7.18, 3, ipc=1.32),
    _w("mcf", "SPEC2006", 7.71, 107.81, 2, ipc=0.21),
    _w("gromacs", "SPEC2006", 0.06, 0.58, 1, ipc=3.89),
    _w("comm5", "COMMERCIAL", 0.67, 1.48, 1, ipc=3.38),
    _w("comm3", "COMMERCIAL", 1.77, 2.84, 1, ipc=2.52),
]

# The 50 workloads without ACT-800+ rows (identities synthesized; only
# their *count* and low activity matter to the paper's averages).
_QUIET_WORKLOADS: List[WorkloadSpec] = [
    # Remaining SPEC2006-style benchmarks.
    _w("perlbench", "SPEC2006", 0.3, 0.9, 0),
    _w("bwaves", "SPEC2006", 0.9, 10.2, 0),
    _w("milc", "SPEC2006", 0.7, 12.4, 0),
    _w("cactus", "SPEC2006", 0.6, 4.8, 0),
    _w("leslie3d", "SPEC2006", 0.1, 7.5, 0),
    _w("namd", "SPEC2006", 0.05, 0.3, 0),
    _w("soplex", "SPEC2006", 0.5, 21.5, 0),
    _w("povray", "SPEC2006", 0.01, 0.1, 0),
    _w("libquantum", "SPEC2006", 0.3, 25.4, 0),
    _w("lbm", "SPEC2006", 0.4, 20.1, 0),
    _w("wrf", "SPEC2006", 0.6, 6.8, 0),
    _w("sjeng", "SPEC2006", 0.2, 0.4, 0),
    _w("gems", "SPEC2006", 0.8, 15.6, 0),
    _w("tonto", "SPEC2006", 0.04, 0.2, 0),
    _w("dealII", "SPEC2006", 0.1, 1.9, 0),
    _w("xalancbmk", "SPEC2006", 0.3, 2.3, 0),
    # Remaining SPEC2017-style benchmarks.
    _w("lbm_17", "SPEC2017", 0.4, 19.3, 0),
    _w("mcf_17", "SPEC2017", 3.9, 32.4, 0),
    _w("cactu_17", "SPEC2017", 1.3, 5.6, 0),
    _w("wrf_17", "SPEC2017", 0.2, 2.9, 0),
    _w("pop2_17", "SPEC2017", 0.6, 3.1, 0),
    _w("imagick_17", "SPEC2017", 0.03, 0.2, 0),
    _w("nab_17", "SPEC2017", 0.1, 0.6, 0),
    _w("fotonik_17", "SPEC2017", 0.8, 14.2, 0),
    _w("roms_17", "SPEC2017", 0.9, 9.8, 0),
    _w("perl_17", "SPEC2017", 0.2, 0.7, 0),
    _w("x264_17", "SPEC2017", 0.1, 0.5, 0),
    _w("deepsjeng_17", "SPEC2017", 0.7, 1.1, 0),
    _w("leela_17", "SPEC2017", 0.03, 0.3, 0),
    _w("exchange2_17", "SPEC2017", 0.01, 0.05, 0),
    # GAP graph workloads: large footprints, diffuse accesses — the
    # paper notes GAP has <5 swaps; we keep them at 0-3 hot rows.
    _w("gap_bc", "GAP", 6.2, 38.5, 3),
    _w("gap_bfs", "GAP", 5.8, 29.2, 2),
    _w("gap_cc", "GAP", 5.5, 31.7, 1),
    _w("gap_pr", "GAP", 6.0, 41.3, 2),
    _w("gap_sssp", "GAP", 6.8, 35.9, 1),
    _w("gap_tc", "GAP", 4.9, 22.6, 0),
    # BIOBENCH remainder.
    _w("tigr", "BIOBENCH", 0.5, 7.9, 0),
    _w("fasta_dna", "BIOBENCH", 0.3, 4.4, 0),
    _w("clustalw", "BIOBENCH", 0.1, 1.3, 0),
    # PARSEC remainder.
    _w("canneal", "PARSEC", 0.9, 11.2, 0),
    _w("dedup", "PARSEC", 1.1, 3.7, 0),
    _w("vips", "PARSEC", 0.4, 1.8, 0),
    _w("raytrace", "PARSEC", 0.6, 1.2, 0),
    # COMMERCIAL remainder.
    _w("comm4", "COMMERCIAL", 2.2, 4.5, 0),
]

# Six mixed workloads of randomly selected benchmarks (paper §3). Each
# mix lists the per-core component traces; aggregate spec fields are
# component means so mixes participate in suite-level summaries.
_MIX_COMPONENTS: Dict[str, Tuple[str, ...]] = {
    "mix1": ("hmmer", "mcf", "ferret", "gcc", "hmmer", "mcf", "ferret", "gcc"),
    "mix2": ("bzip2", "sphinx", "stream", "omnetpp", "bzip2", "sphinx", "stream", "omnetpp"),
    "mix3": ("h264", "mummer", "black", "xz_17", "h264", "mummer", "black", "xz_17"),
    "mix4": ("calculix", "comm1", "fluid", "gobmk", "calculix", "comm1", "fluid", "gobmk"),
    "mix5": ("zeusmp", "comm2", "freq", "astar", "zeusmp", "comm2", "freq", "astar"),
    "mix6": ("gcc_17", "face", "swapt", "blender_17", "gcc_17", "face", "swapt", "blender_17"),
}


def _build_mixes() -> List[WorkloadSpec]:
    by_name = {spec.name: spec for spec in WORKLOAD_TABLE + _QUIET_WORKLOADS}
    mixes = []
    for name, components in _MIX_COMPONENTS.items():
        parts = [by_name[c] for c in components]
        mixes.append(
            WorkloadSpec(
                name=name,
                suite="MIX",
                footprint_gb=sum(p.footprint_gb for p in parts) / len(parts),
                mpki=sum(p.mpki for p in parts) / len(parts),
                act800_rows=sum(p.act800_rows for p in parts) // len(parts),
                components=components,
            )
        )
    return mixes


ALL_WORKLOADS: List[WorkloadSpec] = WORKLOAD_TABLE + _QUIET_WORKLOADS + _build_mixes()

_BY_NAME: Dict[str, WorkloadSpec] = {spec.name: spec for spec in ALL_WORKLOADS}


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by name; raises ``KeyError`` with candidates."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def workloads_by_suite(suite: str) -> List[WorkloadSpec]:
    """All workloads belonging to one suite (e.g. 'SPEC2006')."""
    found = [spec for spec in ALL_WORKLOADS if spec.suite == suite]
    if not found:
        known = sorted({spec.suite for spec in ALL_WORKLOADS})
        raise KeyError(f"unknown suite {suite!r}; known: {known}")
    return found
