"""Synthetic workload generation calibrated to the paper's Table 3.

Two complementary products, matching the two measurement layers in
DESIGN.md §5:

* :class:`ActivationProfile` — full-scale per-bank *row activation
  streams* for one 64 ms window, used for epoch statistics (rows with
  800+ ACTs, swaps per window) where DDR timing is irrelevant.
* :class:`SyntheticTraceGenerator` — post-LLC :class:`TraceRecord`
  streams for the timing simulator, used for IPC/slowdown experiments,
  typically at a scaled epoch.

Calibration logic: the three Table 3 columns pin down the generator.
MPKI fixes the instruction gap between memory accesses; footprint fixes
the address range; the ACT-800+ row count fixes how many "hot" rows
rotate in a conflict-heavy pattern hot enough to cross the paper's 800
activations per window.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List

import numpy as np

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.config import DRAMConfig
from repro.utils.rng import DeterministicRng
from repro.workloads.trace import (
    TRACE_BLOCK_DTYPE,
    TRACE_BLOCK_RECORDS,
    TraceChunks,
    TraceRecord,
    iter_block,
)

if TYPE_CHECKING:
    from repro.workloads.suites import WorkloadSpec

# Calibrated activation counts for a "hot" row per 64 ms window. The
# paper's Figure 5 shows roughly one swap (occasionally two) per
# ACT-800+ row per window, so hot rows draw uniformly from this range.
HOT_ACTS_LOW = 820
HOT_ACTS_HIGH = 1500

# Fraction of background (non-hot) accesses that cause an activation;
# open-page systems typically see 40-60% row-buffer hit rates.
BACKGROUND_ACT_FRACTION = 0.5

# Cycles one core runs in a full 64 ms window at 3.2GHz.
CYCLES_PER_WINDOW = int(0.064 * 3.2e9)

# Kept for backwards compatibility: instructions per window at IPC=1.
INSTRUCTIONS_PER_WINDOW = CYCLES_PER_WINDOW

# Fraction of background accesses that follow the sequential scan (the
# rest are uniform random). Scanning keeps per-row background
# activation counts near-deterministic, so the sharp hot/background
# separation of Table 3 survives threshold scaling, and yields the
# realistic row-buffer hit rates streaming access produces.
BACKGROUND_SCAN_FRACTION = 0.7

# Hot accesses arrive in bursts (phase behaviour): within a burst the
# hot rotation is accessed back-to-back, which is what makes
# BlockHammer's pacing delays bite (Figure 11).
BURST_HOT_PROBABILITY = 0.9

# Records per hot-heavy burst at the head of each burst cycle.
BURST_LENGTH = 64


class GeneratorChunks(TraceChunks):
    """A snapshotable columnar trace source backed by a generator.

    Serves the same block sequence as ``TraceChunks(gen.blocks(count))``
    — the position cursor advances by :data:`TRACE_BLOCK_RECORDS` per
    block with the final block truncated — but pulls each block lazily
    from the generator, so a checkpoint can capture "where the stream
    is" as (position, generator RNG/cursor state) and a restored source
    resumes on the exact next block.
    """

    __slots__ = ("_generator", "_count", "_position")

    def __init__(self, generator: "SyntheticTraceGenerator", count: int) -> None:
        if count < 0:
            raise ValueError("record count must be non-negative")
        self._generator = generator
        self._count = count
        self._position = 0

    def next_block(self):
        served = min(self._count, self._position)
        remaining = self._count - served
        if remaining <= 0:
            return None
        take = min(remaining, TRACE_BLOCK_RECORDS)
        block = self._generator._build_block(self._position, take)
        self._position += TRACE_BLOCK_RECORDS
        return block

    def __iter__(self):
        while True:
            block = self.next_block()
            if block is None:
                return
            yield from iter_block(block)

    # ------------------------------------------------------------------
    # Snapshotable (repro.state)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (self._position, self._generator.snapshot_state())

    def restore_state(self, state: tuple) -> None:
        position, generator_state = state
        self._position = position
        self._generator.restore_state(generator_state)


def estimated_ipc(mpki: float, peak: float = 4.0) -> float:
    """First-order IPC estimate from memory intensity.

    Fitted against this simulator's baseline runs; used to convert
    per-window calibration targets (activations per 64 ms) into
    per-access probabilities. IPC ~ peak/(1 + 0.15*MPKI), clamped.
    """
    return max(0.15, min(peak, peak / (1.0 + 0.15 * mpki)))


def workload_ipc(spec: "WorkloadSpec") -> float:
    """Best available baseline-IPC estimate for a workload.

    Prefers the measured ``ipc_hint`` baked into the suite table (see
    ``scripts/calibrate_ipc.py``), falling back to the MPKI formula.
    """
    if getattr(spec, "ipc_hint", 0.0):
        return spec.ipc_hint
    return estimated_ipc(spec.mpki)


@dataclass
class ActivationProfile:
    """Full-scale per-window activation statistics for one workload."""

    name: str
    hot_rows_per_bank: int
    hot_acts_low: int
    hot_acts_high: int
    background_acts_per_bank: int
    background_rows_per_bank: int

    @classmethod
    def from_spec(
        cls,
        spec: "WorkloadSpec",
        config: DRAMConfig = DRAMConfig(),
        cores: int = 8,
    ) -> "ActivationProfile":
        """Derive the per-bank activation profile from Table 3 columns."""
        banks = config.banks_total
        hot_per_bank = max(0, round(spec.act800_rows / banks))
        # Give small-but-nonzero workloads at least their paper rows by
        # concentrating them: if act800_rows < banks, hot rows live in
        # only some banks; we model the *average* bank and note it.
        footprint_rows = max(1, int(spec.footprint_gb * 1024**3 / config.row_size_bytes))
        background_rows = max(1, min(footprint_rows // banks, config.rows_per_bank // 2))

        instructions = CYCLES_PER_WINDOW * workload_ipc(spec)
        accesses_per_window = cores * instructions * spec.mpki / 1000.0
        hot_acts_total = spec.act800_rows * (HOT_ACTS_LOW + HOT_ACTS_HIGH) / 2.0
        background_accesses = max(0.0, accesses_per_window - hot_acts_total)
        background_acts = int(
            background_accesses * BACKGROUND_ACT_FRACTION / banks
        )
        # Respect the physical activation ceiling of a bank.
        act_ceiling = int(0.9 * config.acts_per_refresh_window)
        hot_acts_bank = hot_per_bank * (HOT_ACTS_LOW + HOT_ACTS_HIGH) // 2
        background_acts = min(background_acts, max(0, act_ceiling - hot_acts_bank))
        # Background rows must stay below the hot threshold — the
        # ACT-800+ count is the calibration target, so for tiny
        # footprints (hmmer) spread background over enough rows.
        if background_acts > 0:
            min_rows = background_acts // (HOT_ACTS_LOW - 120) + 1
            background_rows = min(
                max(background_rows, min_rows), config.rows_per_bank // 2
            )
        return cls(
            name=spec.name,
            hot_rows_per_bank=hot_per_bank,
            hot_acts_low=HOT_ACTS_LOW,
            hot_acts_high=HOT_ACTS_HIGH,
            background_acts_per_bank=background_acts,
            background_rows_per_bank=background_rows,
        )

    def bank_stream(
        self,
        rng: DeterministicRng,
        rows_per_bank: int = 128 * 1024,
        scale: int = 1,
    ) -> np.ndarray:
        """One window's row-activation sequence for a representative bank.

        ``scale`` divides both stream length and per-row counts, for use
        with a proportionally divided swap threshold (DESIGN.md §5).
        Returns an int64 array of row indices in issue order.
        """
        if scale < 1:
            raise ValueError("scale must be >= 1")
        gen = rng.generator
        pieces: List[np.ndarray] = []
        if self.hot_rows_per_bank > 0:
            hot_rows = gen.choice(
                rows_per_bank, size=self.hot_rows_per_bank, replace=False
            )
            counts = gen.integers(
                self.hot_acts_low // scale,
                max(self.hot_acts_high // scale, self.hot_acts_low // scale + 1),
                size=self.hot_rows_per_bank,
            )
            pieces.append(np.repeat(hot_rows, counts))
        background = self.background_acts_per_bank // scale
        if background > 0:
            rows = gen.integers(0, self.background_rows_per_bank, size=background)
            # Background rows occupy a contiguous region distinct from
            # most hot rows; collisions are harmless (they just add
            # activations to a hot row).
            pieces.append(rows.astype(np.int64) % rows_per_bank)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        stream = np.concatenate(pieces).astype(np.int64)
        gen.shuffle(stream)
        return stream


class SyntheticTraceGenerator:
    """Post-LLC trace stream for one core of a rate-mode run.

    The stream interleaves two access classes:

    * **hammer accesses** rotate round-robin over this core's share of
      the workload's hot rows, two or more rows per bank so every access
      conflicts in the row buffer and costs an ACT;
    * **background accesses** touch lines spread over the footprint.

    The hot-access probability is derived so hot rows accumulate their
    calibrated activation count per (possibly scaled) window.
    """

    def __init__(
        self,
        spec: "WorkloadSpec",
        core_id: int,
        cores: int = 8,
        config: DRAMConfig = DRAMConfig(),
        seed: int = 0,
        time_scale: int = 1,
        write_fraction: float = 0.3,
    ) -> None:
        self.spec = spec
        self.core_id = core_id
        self.cores = cores
        self.config = config
        self.time_scale = time_scale
        self.write_fraction = write_fraction
        self._rng = DeterministicRng(seed, "trace", spec.name, core_id)
        self._mapper = AddressMapper(config)
        self._mean_gap = max(1.0, 1000.0 / spec.mpki - 1.0)
        self._hot_addresses = self._build_hot_addresses()
        self._hot_cursor = 0
        self._hot_probability = self._derive_hot_probability()
        footprint_bytes = int(spec.footprint_gb * 1024**3)
        self._footprint_lines = max(
            1, footprint_bytes // cores // config.line_size_bytes
        )
        self._footprint_rows = max(1, self._footprint_lines // config.lines_per_row)
        # Rate mode: each core's copy occupies its own address region.
        self._region_base_line = core_id * self._footprint_lines
        self._region_base_row = core_id * (
            config.rows_per_bank // max(1, cores)
        )
        # Random scan phase decorrelates cores' bank sequences.
        self._scan_cursor = self._rng.randint(
            0, max(1, self._footprint_rows * self.SCAN_ACCESSES_PER_ROW)
        )
        self._hot_array = np.asarray(self._hot_addresses, dtype=np.int64)
        # Deterministic periodic bursts: the first BURST_LENGTH records
        # of every cycle are hot-heavy, giving the temporal clustering
        # real hammering phases have.
        burst_duty = (
            min(1.0, self._hot_probability / BURST_HOT_PROBABILITY)
            if self._hot_addresses
            else 0.0
        )
        self._cycle_len = int(BURST_LENGTH / burst_duty) if burst_duty > 0 else 0

    # ------------------------------------------------------------------
    # Stream
    # ------------------------------------------------------------------
    def records(self, count: int) -> Iterator[TraceRecord]:
        """Yield ``count`` trace records.

        Thin adaptor over :meth:`blocks`: the columnar path is the one
        implementation; this view materializes one ``TraceRecord`` per
        row for scalar consumers.
        """
        for block in self.blocks(count):
            yield from iter_block(block)

    def chunks(self, count: int) -> "GeneratorChunks":
        """``count`` records as a columnar chunk source.

        Returns a :class:`GeneratorChunks` — block-for-block identical
        to ``TraceChunks(self.blocks(count))`` but snapshotable: its
        position cursor and this generator's RNG/cursor state round-trip
        through ``repro.state`` checkpoints.
        """
        return GeneratorChunks(self, count)

    def blocks(self, count: int) -> Iterator[np.ndarray]:
        """Yield ``count`` records as numpy blocks (the fast path).

        Blocks carry :data:`TRACE_BLOCK_RECORDS` rows (final block
        truncated). RNG batches are always drawn at full block size —
        draw-for-draw what the pre-columnar per-record stream consumed —
        so any prefix of the stream is byte-identical however it is
        chunked, and identical to :meth:`records_reference`.
        """
        position = 0
        remaining = count
        while remaining > 0:
            take = min(remaining, TRACE_BLOCK_RECORDS)
            yield self._build_block(position, take)
            position += TRACE_BLOCK_RECORDS
            remaining -= take

    def _build_block(self, position: int, take: int) -> np.ndarray:
        """Materialize the next ``take`` records, fully vectorized.

        The three access classes of the scalar reference are resolved
        as masks: hot-burst membership first, then the streaming scan,
        then uniform lines over the footprint. Rotation cursors advance
        by each class's population count — consecutive hot (or scan)
        accesses draw consecutive cursor values exactly as the
        per-record implementation does.
        """
        gen = self._rng.generator
        batch = TRACE_BLOCK_RECORDS
        gaps = gen.geometric(1.0 / self._mean_gap, size=batch)
        hot_draw = gen.random(size=batch)
        write_draw = gen.random(size=batch)
        scan_draw = gen.random(size=batch)
        random_lines = gen.integers(0, self._footprint_lines, size=batch)
        if take < batch:
            gaps = gaps[:take]
            hot_draw = hot_draw[:take]
            write_draw = write_draw[:take]
            scan_draw = scan_draw[:take]
            random_lines = random_lines[:take]

        if self._cycle_len > 0:
            pos = np.arange(position, position + take, dtype=np.int64)
            hot_mask = (pos % self._cycle_len < BURST_LENGTH) & (
                hot_draw < BURST_HOT_PROBABILITY
            )
        else:
            hot_mask = np.zeros(take, dtype=bool)
        scan_mask = ~hot_mask & (scan_draw < BACKGROUND_SCAN_FRACTION)

        # Background random lines everywhere, then overwrite the hot and
        # scan positions (cheaper than three scatter passes).
        addresses = (
            self._region_base_line + random_lines
        ) * self.config.line_size_bytes
        hot_count = int(hot_mask.sum())
        if hot_count:
            rotation = len(self._hot_addresses)
            indices = (
                self._hot_cursor + np.arange(hot_count, dtype=np.int64)
            ) % rotation
            addresses[hot_mask] = self._hot_array[indices]
            self._hot_cursor = (self._hot_cursor + hot_count) % rotation
        scan_count = int(scan_mask.sum())
        if scan_count:
            cursors = self._scan_cursor + np.arange(scan_count, dtype=np.int64)
            addresses[scan_mask] = self._scan_addresses(cursors)
            self._scan_cursor += scan_count

        block = np.empty(take, dtype=TRACE_BLOCK_DTYPE)
        block["gap"] = gaps
        block["address"] = addresses
        block["is_write"] = write_draw < self.write_fraction
        return block

    # ------------------------------------------------------------------
    # Snapshotable (repro.state): everything except the RNG stream and
    # the two rotation cursors is derived from the constructor
    # arguments, so a fresh generator restores exactly.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            self._rng.snapshot_state(),
            self._hot_cursor,
            self._scan_cursor,
        )

    def restore_state(self, state: tuple) -> None:
        rng_state, hot_cursor, scan_cursor = state
        self._rng.restore_state(rng_state)
        self._hot_cursor = hot_cursor
        self._scan_cursor = scan_cursor

    def records_reference(self, count: int) -> Iterator[TraceRecord]:
        """The pre-columnar per-record stream, kept as the oracle.

        The equivalence suite replays this against :meth:`records` /
        :meth:`blocks` to prove the vectorization changed nothing. Use
        a dedicated generator instance: both paths consume the same RNG
        and cursors.
        """
        yield from itertools.islice(self._record_stream_reference(), count)

    def _record_stream_reference(self) -> Iterator[TraceRecord]:
        gen = self._rng.generator
        batch = TRACE_BLOCK_RECORDS
        cycle_len = self._cycle_len
        position = 0
        while True:
            gaps = gen.geometric(1.0 / self._mean_gap, size=batch)
            hot_draw = gen.random(size=batch)
            write_draw = gen.random(size=batch)
            scan_draw = gen.random(size=batch)
            random_lines = gen.integers(0, self._footprint_lines, size=batch)
            for i in range(batch):
                in_burst = cycle_len > 0 and position % cycle_len < BURST_LENGTH
                position += 1
                if in_burst and hot_draw[i] < BURST_HOT_PROBABILITY:
                    address = self._next_hot_address()
                elif scan_draw[i] < BACKGROUND_SCAN_FRACTION:
                    address = self._next_scan_address()
                else:
                    line = self._region_base_line + int(random_lines[i])
                    address = line * self.config.line_size_bytes
                yield TraceRecord(
                    instruction_gap=int(gaps[i]),
                    address=address,
                    is_write=bool(write_draw[i] < self.write_fraction),
                )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_hot_addresses(self) -> List[int]:
        """This core's rotation of hot-row addresses.

        Hot rows are spread over banks; each core hammers its own slice
        of them, rotating so consecutive accesses to a bank hit
        different rows (guaranteed row-buffer conflicts).
        """
        total_hot = self.spec.act800_rows
        share = total_hot // self.cores + (
            1 if self.core_id < total_hot % self.cores else 0
        )
        if share == 0:
            return []
        rng = self._rng.child("hotrows")
        banks = self.config.banks_per_rank
        channels = self.config.channels
        # The row/column draws stay scalar and interleaved — exactly
        # the stream the reference loop consumed — but the bit-packing
        # runs once, batched, instead of one Python encode per row.
        randint = rng.randint
        rows_per_bank = self.config.rows_per_bank
        lines_per_row = self.config.lines_per_row
        rows = np.empty(share, dtype=np.int64)
        columns = np.empty(share, dtype=np.int64)
        for i in range(share):
            rows[i] = randint(0, rows_per_bank)
            columns[i] = randint(0, lines_per_row)
        index = np.arange(share, dtype=np.int64)
        addresses = self._mapper.encode_batch(
            channel=(self.core_id + index) % channels,
            rank=np.zeros(share, dtype=np.int64),
            bank=(self.core_id * 3 + index) % banks,
            row=rows,
            column=columns,
        )
        return addresses.tolist()

    def _derive_hot_probability(self) -> float:
        """Probability an access targets the hot rotation.

        Chosen so each hot row sees ~(HOT_ACTS_LOW+HOT_ACTS_HIGH)/2
        activations per full-scale window given this core's access rate
        (estimated via :func:`estimated_ipc`).
        """
        if not self._hot_addresses:
            return 0.0
        instructions = CYCLES_PER_WINDOW * workload_ipc(self.spec)
        accesses_per_window = instructions * self.spec.mpki / 1000.0
        if accesses_per_window <= 0:
            return 0.0
        target_acts = len(self._hot_addresses) * (HOT_ACTS_LOW + HOT_ACTS_HIGH) / 2.0
        return min(0.95, target_acts / accesses_per_window)

    def _next_hot_address(self) -> int:
        address = self._hot_addresses[self._hot_cursor]
        self._hot_cursor = (self._hot_cursor + 1) % len(self._hot_addresses)
        return address

    # Strided scan: 8 accesses per row pass (every 16th line). Keeps
    # the streaming row-buffer-hit behaviour while bounding the ACT
    # count any one row can accumulate per pass — even when two cores'
    # scans collide on a bank and ping-pong the row buffer, a pass
    # costs at most ~16 activations, far below any swap threshold.
    SCAN_ACCESSES_PER_ROW = 8

    def _next_scan_address(self) -> int:
        """Next address of the streaming scan.

        Scans bank-row-major: a burst of strided accesses within one
        row, then the next (channel, bank, row) chunk — the order real
        streaming produces after the LLC.
        """
        config = self.config
        per_row = self.SCAN_ACCESSES_PER_ROW
        stride = max(1, config.lines_per_row // per_row)
        column = (self._scan_cursor % per_row) * stride
        chunk = (self._scan_cursor // per_row) % self._footprint_rows
        self._scan_cursor += 1
        channel = chunk % config.channels
        bank = (chunk // config.channels + self.core_id * 5) % config.banks_per_rank
        row = (
            self._region_base_row
            + chunk // (config.channels * config.banks_per_rank)
        ) % config.rows_per_bank
        return self._mapper.encode(
            DecodedAddress(channel=channel, rank=0, bank=bank, row=row, column=column)
        )

    def _scan_addresses(self, cursors: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_next_scan_address` over a cursor array."""
        config = self.config
        per_row = self.SCAN_ACCESSES_PER_ROW
        stride = max(1, config.lines_per_row // per_row)
        column = (cursors % per_row) * stride
        chunk = (cursors // per_row) % self._footprint_rows
        channel = chunk % config.channels
        bank = (chunk // config.channels + self.core_id * 5) % config.banks_per_rank
        row = (
            self._region_base_row
            + chunk // (config.channels * config.banks_per_rank)
        ) % config.rows_per_bank
        return self._mapper.encode_batch(channel, 0, bank, row, column)
