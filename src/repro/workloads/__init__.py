"""Workloads: trace format, synthetic generators, and the paper's suite.

The paper drives USIMM with Pin-captured traces of SPEC2006/2017, GAP,
BIOBENCH, PARSEC and COMMERCIAL benchmarks. Those traces are not
redistributable, so this package synthesizes traces calibrated to the
three workload statistics the RRS evaluation actually depends on
(Table 3): memory footprint, MPKI, and the number of rows receiving
800+ activations per 64 ms window. See DESIGN.md §1.
"""

from repro.workloads.trace import (
    TRACE_BLOCK_DTYPE,
    TRACE_BLOCK_RECORDS,
    TraceChunks,
    TraceRecord,
    iter_block,
    read_trace,
    read_trace_chunks,
    records_to_blocks,
    write_trace,
)
from repro.workloads.cachefilter import (
    RawAccess,
    filter_through_llc,
    filter_through_llc_chunks,
)
from repro.workloads.synthetic import (
    ActivationProfile,
    SyntheticTraceGenerator,
)
from repro.workloads.suites import (
    WorkloadSpec,
    WORKLOAD_TABLE,
    ALL_WORKLOADS,
    workloads_by_suite,
    get_workload,
)

__all__ = [
    "TRACE_BLOCK_DTYPE",
    "TRACE_BLOCK_RECORDS",
    "TraceChunks",
    "TraceRecord",
    "iter_block",
    "read_trace",
    "read_trace_chunks",
    "records_to_blocks",
    "write_trace",
    "RawAccess",
    "filter_through_llc",
    "filter_through_llc_chunks",
    "ActivationProfile",
    "SyntheticTraceGenerator",
    "WorkloadSpec",
    "WORKLOAD_TABLE",
    "ALL_WORKLOADS",
    "workloads_by_suite",
    "get_workload",
]
