"""Trace record format and (de)serialization.

A trace is a sequence of post-LLC memory accesses, each preceded by a
count of non-memory instructions — the same shape as USIMM's trace
format. Traces can be streamed from generators (the normal path) or
round-tripped through a simple text format for inspection and reuse.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, NamedTuple, Union


class TraceRecord(NamedTuple):
    """One trace entry: ``instruction_gap`` non-memory instructions,
    then a memory access to ``address`` (read or write)."""

    instruction_gap: int
    address: int
    is_write: bool


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records as ``gap R|W 0xADDR`` lines; returns record count."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            kind = "W" if record.is_write else "R"
            handle.write(f"{record.instruction_gap} {kind} 0x{record.address:x}\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records back from a file written by :func:`write_trace`."""
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[1] not in ("R", "W"):
                raise ValueError(f"{path}:{line_number}: malformed trace line {line!r}")
            yield TraceRecord(
                instruction_gap=int(parts[0]),
                address=int(parts[2], 16),
                is_write=parts[1] == "W",
            )
