"""Trace record format, columnar blocks, and (de)serialization.

A trace is a sequence of post-LLC memory accesses, each preceded by a
count of non-memory instructions — the same shape as USIMM's trace
format. Traces can be streamed from generators (the normal path) or
round-tripped through a simple text format for inspection and reuse.

Two equivalent representations exist:

* **scalar** — an iterator of :class:`TraceRecord` tuples, one Python
  object per access (the original API, kept everywhere);
* **columnar** — an iterator of numpy structured arrays
  (:data:`TRACE_BLOCK_DTYPE` blocks) wrapped in :class:`TraceChunks`,
  the zero-object fast path the simulator's hot loop consumes.

The two carry identical data: :func:`iter_block` and
:func:`records_to_blocks` convert between them without loss, and a
:class:`TraceChunks` instance is itself iterable as ``TraceRecord``
tuples so every scalar consumer keeps working.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, NamedTuple, Optional, Union

import numpy as np

# One block of the columnar representation: field-for-field the same
# data a TraceRecord carries. int64 addresses cover the full physical
# address space of any modelled geometry (< 2^48 bytes).
TRACE_BLOCK_DTYPE = np.dtype(
    [("gap", np.int64), ("address", np.int64), ("is_write", np.bool_)]
)

# Rows per columnar block. Generators draw their RNG batches at this
# granularity, so it is also the unit at which chunked and scalar
# streams are guaranteed to stay draw-for-draw identical.
TRACE_BLOCK_RECORDS = 4096


class TraceRecord(NamedTuple):
    """One trace entry: ``instruction_gap`` non-memory instructions,
    then a memory access to ``address`` (read or write)."""

    instruction_gap: int
    address: int
    is_write: bool


def iter_block(block: np.ndarray) -> Iterator[TraceRecord]:
    """Yield one :class:`TraceRecord` per row of a columnar block.

    ``tolist()`` converts each column once, so iteration deals in plain
    Python ints/bools — the exact types the scalar API produces.
    """
    gaps = block["gap"].tolist()
    addresses = block["address"].tolist()
    writes = block["is_write"].tolist()
    for gap, address, is_write in zip(gaps, addresses, writes):
        yield TraceRecord(gap, address, is_write)


def records_to_blocks(
    records: Iterable[TraceRecord],
    block_records: int = TRACE_BLOCK_RECORDS,
) -> Iterator[np.ndarray]:
    """Pack a scalar record stream into columnar blocks."""
    if block_records <= 0:
        raise ValueError("block_records must be positive")
    buffer: List[TraceRecord] = []
    for record in records:
        buffer.append(record)
        if len(buffer) == block_records:
            yield np.array(buffer, dtype=TRACE_BLOCK_DTYPE)
            buffer = []
    if buffer:
        yield np.array(buffer, dtype=TRACE_BLOCK_DTYPE)


class TraceChunks:
    """A columnar trace: an iterator of :data:`TRACE_BLOCK_DTYPE` blocks.

    This is the type the simulator's fast path dispatches on: a
    :class:`~repro.mem.cpu.Core` handed a ``TraceChunks`` consumes whole
    blocks (with batched address decode) instead of one record at a
    time. It also iterates as plain :class:`TraceRecord` tuples, so any
    scalar consumer — including a ``Core`` without a mapper — sees the
    identical stream.
    """

    __slots__ = ("_blocks",)

    def __init__(self, blocks: Iterable[np.ndarray]) -> None:
        self._blocks = iter(blocks)

    def next_block(self) -> Optional[np.ndarray]:
        """The next columnar block, or None when the trace is done."""
        return next(self._blocks, None)

    def __iter__(self) -> Iterator[TraceRecord]:
        for block in self._blocks:
            yield from iter_block(block)


def write_trace(path: Union[str, Path], records: Iterable[TraceRecord]) -> int:
    """Write records as ``gap R|W 0xADDR`` lines; returns record count."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            kind = "W" if record.is_write else "R"
            handle.write(f"{record.instruction_gap} {kind} 0x{record.address:x}\n")
            count += 1
    return count


def read_trace_chunks(
    path: Union[str, Path], block_records: int = TRACE_BLOCK_RECORDS
) -> TraceChunks:
    """Stream a trace file as a columnar :class:`TraceChunks` source."""
    return TraceChunks(records_to_blocks(read_trace(path), block_records))


def read_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records back from a file written by :func:`write_trace`."""
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[1] not in ("R", "W"):
                raise ValueError(f"{path}:{line_number}: malformed trace line {line!r}")
            yield TraceRecord(
                instruction_gap=int(parts[0]),
                address=int(parts[2], 16),
                is_write=parts[1] == "W",
            )
