"""Cache filtering: raw access streams -> post-LLC memory traces.

The paper's traces are captured with Pin and filtered through an
L1/L2(/LLC) hierarchy before reaching USIMM. Our synthetic generators
emit post-LLC streams directly, but when you have a *raw* access stream
(your own instrumentation, a replayed application log), this module
performs the same reduction: hits disappear, misses become reads,
dirty evictions become writebacks.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.mem.cache import CacheConfig, LastLevelCache
from repro.workloads.trace import (
    TRACE_BLOCK_RECORDS,
    TraceChunks,
    TraceRecord,
    records_to_blocks,
)


class RawAccess(NamedTuple):
    """One pre-cache access: ``gap`` instructions, then a load/store."""

    instruction_gap: int
    address: int
    is_write: bool


def filter_through_llc(
    accesses: Iterable[RawAccess],
    cache: LastLevelCache = None,
) -> Iterator[TraceRecord]:
    """Reduce a raw access stream to its post-LLC memory trace.

    Instruction gaps of cache hits accumulate into the next miss's gap
    (hits cost no memory traffic but their instructions still retire).
    A miss emits one read; a dirty eviction additionally emits a
    zero-gap writeback, mirroring how write-back caches generate DRAM
    writes.
    """
    if cache is None:
        cache = LastLevelCache(CacheConfig())
    pending_gap = 0
    for access in accesses:
        pending_gap += access.instruction_gap
        result = cache.access(access.address, access.is_write)
        if result is None:
            pending_gap += 1  # the hit's own instruction
            continue
        miss_address, writeback = result
        yield TraceRecord(
            instruction_gap=pending_gap,
            address=miss_address,
            is_write=False,
        )
        pending_gap = 0
        if writeback:
            yield TraceRecord(instruction_gap=0, address=miss_address, is_write=True)


def filter_through_llc_chunks(
    accesses: Iterable[RawAccess],
    cache: LastLevelCache = None,
    block_records: int = TRACE_BLOCK_RECORDS,
) -> TraceChunks:
    """Columnar view of :func:`filter_through_llc`.

    The cache model itself stays scalar (its hit/miss decisions are
    inherently sequential); the post-LLC output is packed into blocks
    so the simulator consumes a filtered raw stream through the same
    batched-decode fast path as synthetic traces.
    """
    return TraceChunks(
        records_to_blocks(filter_through_llc(accesses, cache), block_records)
    )
