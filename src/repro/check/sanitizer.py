"""Opt-in runtime DDR4 protocol sanitizer and RRS invariant auditor.

Set ``REPRO_SANITIZE=1`` and :class:`~repro.mem.system.SystemSimulator`
installs a :class:`ProtocolSanitizer`: every bank's command stream is
checked *online* against the paper's Table 2 timing rules, and the RRS
swap machinery is audited after every mitigating action. The first
break raises :class:`ProtocolViolation` carrying the rule id, the bank,
the offending command, and the recent command-trace window — failing
the run loudly instead of caching a silently-wrong result.

Checked rules
-------------
``DDR-tRC``    ACT-to-ACT spacing on one bank.
``DDR-tRCD``   ACT-to-CAS spacing.
``DDR-tRP``    PRE-to-ACT spacing.
``DDR-tRAS``   ACT-to-PRE spacing (row must stay open tRAS).
``DDR-tRRD``   ACT-to-ACT spacing across banks of one rank
               (checked only when ``DRAMConfig.t_rrd > 0``).
``DDR-tFAW``   at most 4 ACTs per rank per tFAW window
               (checked only when ``DRAMConfig.t_faw > 0``).
``DDR-tREFI``  refresh cadence: successive REF bursts at most
               ``(1 + max_postponed) * tREFI`` apart.
``DDR-OPEN-ROW``   ACT on a bank with a row open / PRE on a closed
                   bank / CAS to a row other than the open one.
``RRS-RIT-BIJECTIVE``  RIT forward/inverse maps are a consistent
                       sparse permutation (no duplicate physical
                       targets, no identity entries, inverse matches).
``RRS-RIT-CAPACITY``   directional entries within the configured
                       capacity.
``RRS-CAT-ALIAS``      CAT shadow diverges from the RIT map, or a swap
                       destination aliases a live hot (tracked) row.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.dram.config import DRAMConfig

_ENV_SANITIZE = "REPRO_SANITIZE"
_EPS = 1e-6


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE=1`` opts runtime checking in."""
    return os.environ.get(_ENV_SANITIZE, "0") == "1"


@dataclass(frozen=True)
class TracedCommand:
    """One command as the sanitizer observed it."""

    kind: str  # "ACT" | "PRE" | "CAS" | "REF"
    row: int
    time_ns: float

    def __str__(self) -> str:
        return f"{self.kind}(row={self.row}) @ {self.time_ns:.2f}ns"


class ProtocolViolation(AssertionError):
    """A DDR timing rule or RRS invariant was broken.

    ``rule`` is the stable identifier tests assert on; ``window`` is
    the recent command trace of the offending bank (oldest first).
    """

    def __init__(
        self,
        rule: str,
        message: str,
        bank: Optional[Tuple[int, int, int]] = None,
        command: Optional[TracedCommand] = None,
        window: Tuple[TracedCommand, ...] = (),
    ) -> None:
        self.rule = rule
        self.bank = bank
        self.command = command
        self.window = window
        parts = [f"{rule}: {message}"]
        if bank is not None:
            parts.append(f"bank={bank}")
        if command is not None:
            parts.append(f"command={command}")
        if window:
            trace = "; ".join(str(entry) for entry in window)
            parts.append(f"trace=[{trace}]")
        super().__init__(" | ".join(parts))


class BankCommandChecker:
    """Online DDR4 timing checker for one bank's command stream.

    Callable with the ``(kind, row, time_ns)`` observer signature of
    :class:`~repro.dram.timing.BankTimingState`, so it can either be
    installed directly or chained behind another observer. Raises
    :class:`ProtocolViolation` on the first illegal command.
    """

    def __init__(
        self,
        config: DRAMConfig,
        bank: Tuple[int, int, int] = (0, 0, 0),
        window_size: int = 16,
        rank_act_history: Optional[Deque[float]] = None,
    ) -> None:
        self.config = config
        self.bank = bank
        self.open_row = -1
        self.last_act_ns = float("-inf")
        self.last_pre_ns = float("-inf")
        self.commands_seen = 0
        self.recent: Deque[TracedCommand] = deque(maxlen=window_size)
        # Shared per-rank ACT history enables tRRD/tFAW across banks.
        self._rank_acts = rank_act_history

    # ------------------------------------------------------------------
    def __call__(self, kind: str, row: int, time_ns: float) -> None:
        command = TracedCommand(kind=kind, row=row, time_ns=time_ns)
        self.commands_seen += 1
        if kind == "ACT":
            self._check_act(command)
        elif kind == "PRE":
            self._check_pre(command)
        elif kind == "CAS":
            self._check_cas(command)
        self.recent.append(command)

    def _fail(self, rule: str, message: str, command: TracedCommand) -> None:
        raise ProtocolViolation(
            rule,
            message,
            bank=self.bank,
            command=command,
            window=tuple(self.recent),
        )

    # ------------------------------------------------------------------
    def _check_act(self, command: TracedCommand) -> None:
        t = command.time_ns
        if self.open_row != -1:
            self._fail(
                "DDR-OPEN-ROW",
                f"ACT while row {self.open_row} is open",
                command,
            )
        if t - self.last_act_ns < self.config.t_rc - _EPS:
            self._fail(
                "DDR-tRC",
                f"ACT-to-ACT gap {t - self.last_act_ns:.2f}ns < "
                f"tRC={self.config.t_rc}ns",
                command,
            )
        if t - self.last_pre_ns < self.config.t_rp - _EPS:
            self._fail(
                "DDR-tRP",
                f"PRE-to-ACT gap {t - self.last_pre_ns:.2f}ns < "
                f"tRP={self.config.t_rp}ns",
                command,
            )
        if self._rank_acts is not None:
            if self.config.t_rrd > 0 and self._rank_acts:
                gap = t - self._rank_acts[-1]
                if gap < self.config.t_rrd - _EPS:
                    self._fail(
                        "DDR-tRRD",
                        f"rank ACT-to-ACT gap {gap:.2f}ns < "
                        f"tRRD={self.config.t_rrd}ns",
                        command,
                    )
            if self.config.t_faw > 0 and len(self._rank_acts) >= 4:
                fourth_back = self._rank_acts[-4]
                if t - fourth_back < self.config.t_faw - _EPS:
                    self._fail(
                        "DDR-tFAW",
                        f"5 ACTs within {t - fourth_back:.2f}ns < "
                        f"tFAW={self.config.t_faw}ns",
                        command,
                    )
            self._rank_acts.append(t)
        self.last_act_ns = t
        self.open_row = command.row

    def _check_pre(self, command: TracedCommand) -> None:
        t = command.time_ns
        if self.open_row == -1:
            self._fail("DDR-OPEN-ROW", "PRE on a closed bank", command)
        if t - self.last_act_ns < self.config.t_ras_ns - _EPS:
            self._fail(
                "DDR-tRAS",
                f"ACT-to-PRE gap {t - self.last_act_ns:.2f}ns < "
                f"tRAS={self.config.t_ras_ns}ns",
                command,
            )
        self.last_pre_ns = t
        self.open_row = -1

    def _check_cas(self, command: TracedCommand) -> None:
        t = command.time_ns
        if command.row != self.open_row:
            self._fail(
                "DDR-OPEN-ROW",
                f"CAS to row {command.row} while open row is "
                f"{self.open_row}",
                command,
            )
        if t - self.last_act_ns < self.config.t_rcd - _EPS:
            self._fail(
                "DDR-tRCD",
                f"ACT-to-CAS gap {t - self.last_act_ns:.2f}ns < "
                f"tRCD={self.config.t_rcd}ns",
                command,
            )


class RefreshCadenceChecker:
    """Validates REF burst cadence against the tREFI window."""

    def __init__(self, config: DRAMConfig, max_postponed: int = 0) -> None:
        self.config = config
        self.max_postponed = max_postponed
        self.last_burst_ns: Optional[float] = None
        self.bursts_seen = 0

    def __call__(self, start_ns: float, bursts: int) -> None:
        limit = (1 + self.max_postponed) * self.config.t_refi
        if self.last_burst_ns is not None:
            gap = start_ns - self.last_burst_ns
            if gap > limit + _EPS:
                raise ProtocolViolation(
                    "DDR-tREFI",
                    f"refresh gap {gap:.0f}ns exceeds "
                    f"(1+{self.max_postponed})*tREFI={limit:.0f}ns",
                    command=TracedCommand("REF", -1, start_ns),
                )
        self.last_burst_ns = start_ns
        self.bursts_seen += bursts


# ----------------------------------------------------------------------
# RRS swap-machinery audit
# ----------------------------------------------------------------------
def audit_rit(rit, bank: Optional[Tuple[int, int, int]] = None) -> None:
    """Audit one Row Indirection Table's permutation invariants.

    Raises :class:`ProtocolViolation` when the forward/inverse maps are
    not a consistent sparse permutation (``RRS-RIT-BIJECTIVE``), the
    directional-entry capacity is exceeded (``RRS-RIT-CAPACITY``), or
    the optional CAT shadow diverges from the map (``RRS-CAT-ALIAS``).
    """
    forward: Dict[int, object] = rit._map
    inverse: Dict[int, int] = rit._inverse
    if len(forward) != len(inverse):
        raise ProtocolViolation(
            "RRS-RIT-BIJECTIVE",
            f"forward map has {len(forward)} entries but inverse has "
            f"{len(inverse)} — a physical row is aliased by multiple "
            "logical rows",
            bank=bank,
        )
    seen_physical: Dict[int, int] = {}
    for logical in sorted(forward):
        entry = forward[logical]
        physical = entry.physical
        if logical == physical:
            raise ProtocolViolation(
                "RRS-RIT-BIJECTIVE",
                f"identity entry {logical}->{physical} stored (identity "
                "mappings must be absent)",
                bank=bank,
            )
        if physical in seen_physical:
            raise ProtocolViolation(
                "RRS-RIT-BIJECTIVE",
                f"physical row {physical} is the target of both logical "
                f"rows {seen_physical[physical]} and {logical}",
                bank=bank,
            )
        seen_physical[physical] = logical
        if inverse.get(physical) != logical:
            raise ProtocolViolation(
                "RRS-RIT-BIJECTIVE",
                f"inverse map disagrees: forward {logical}->{physical} "
                f"but inverse says resident of {physical} is "
                f"{inverse.get(physical)}",
                bank=bank,
            )
    if len(forward) > rit.capacity_entries:
        raise ProtocolViolation(
            "RRS-RIT-CAPACITY",
            f"{len(forward)} directional entries exceed capacity "
            f"{rit.capacity_entries}",
            bank=bank,
        )
    cat = rit._cat
    if cat is not None:
        shadow = dict(cat.items())
        expected = {logical: forward[logical].physical for logical in forward}
        if shadow != expected:
            raise ProtocolViolation(
                "RRS-CAT-ALIAS",
                f"CAT shadow ({len(shadow)} entries) diverges from the "
                f"RIT map ({len(expected)} entries)",
                bank=bank,
            )


def _audit_rrs_banks(mitigation) -> None:
    """Audit every per-bank RIT of an RRS-style mitigation."""
    banks = getattr(mitigation, "_banks", None)
    if not banks:
        return
    for bank_key in sorted(banks):
        state = banks[bank_key]
        rit = getattr(state, "rit", None)
        if rit is not None:
            audit_rit(rit, bank=bank_key)


def _checked_destination_picker(mitigation) -> Callable[..., int]:
    """Wrap ``_pick_destination`` to validate each swap destination.

    Section 4.4: the random destination must not already live in the
    RIT, and (when ``exclude_tracked_destinations`` is set) must not be
    a currently-tracked hot row — otherwise a CAT entry would alias a
    live hot row.
    """
    original = mitigation._pick_destination

    def checked(state, row: int) -> int:
        destination = original(state, row)
        if state.rit.is_swapped(destination):
            raise ProtocolViolation(
                "RRS-CAT-ALIAS",
                f"swap destination {destination} already resides in the "
                "RIT",
            )
        exclude = getattr(mitigation.config, "exclude_tracked_destinations", False)
        if exclude and destination in state.tracker:
            raise ProtocolViolation(
                "RRS-CAT-ALIAS",
                f"swap destination {destination} is a live hot row in "
                "the tracker",
            )
        return destination

    return checked


class ProtocolSanitizer:
    """Facade installing every runtime check on a system simulator."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self.checkers: List[BankCommandChecker] = []
        self.refresh_checker: Optional[RefreshCadenceChecker] = None
        self.audits = 0

    def install(self, simulator) -> "ProtocolSanitizer":
        """Attach command checkers, the REF checker, and RRS audits."""
        for channel in simulator.channels:
            for rank_index, rank in enumerate(channel.ranks):
                rank_acts: Deque[float] = deque(maxlen=8)
                for bank in rank.banks:
                    checker = BankCommandChecker(
                        self.config,
                        bank=(channel.index, rank_index, bank.index),
                        rank_act_history=rank_acts,
                    )
                    self._chain_observer(bank.timing, checker)
                    self.checkers.append(checker)
        self.refresh_checker = RefreshCadenceChecker(
            self.config, max_postponed=simulator.refresh.max_postponed
        )
        simulator.refresh.observer = self.refresh_checker
        mitigation = simulator.mitigation
        if hasattr(mitigation, "_pick_destination"):
            mitigation._pick_destination = _checked_destination_picker(mitigation)
        for controller in simulator.controllers:
            controller.sanitizer = self
        return self

    @staticmethod
    def _chain_observer(timing, checker: BankCommandChecker) -> None:
        existing = timing.observer
        if existing is None:
            timing.observer = checker
        else:

            def chained(kind: str, row: int, time_ns: float) -> None:
                existing(kind, row, time_ns)
                checker(kind, row, time_ns)

            timing.observer = chained

    def audit_mitigation(self, mitigation) -> None:
        """Post-action audit of the RRS swap machinery."""
        self.audits += 1
        _audit_rrs_banks(mitigation)

    # ------------------------------------------------------------------
    # Snapshotable (repro.state): checker state is part of sim state
    # under REPRO_SANITIZE=1 — a resumed run must see the same open-row
    # shadow and rank ACT history a from-scratch run would. The per-rank
    # deques are shared across a rank's checkers, so they are deduped by
    # identity in install order and restored in place.
    # ------------------------------------------------------------------
    def _shared_rank_histories(self) -> List[Deque[float]]:
        histories: List[Deque[float]] = []
        for checker in self.checkers:
            acts = checker._rank_acts
            if acts is not None and not any(acts is h for h in histories):
                histories.append(acts)
        return histories

    def snapshot_state(self) -> tuple:
        return (
            self.audits,
            [
                (
                    checker.open_row,
                    checker.last_act_ns,
                    checker.last_pre_ns,
                    checker.commands_seen,
                    [(c.kind, c.row, c.time_ns) for c in checker.recent],
                )
                for checker in self.checkers
            ],
            [list(acts) for acts in self._shared_rank_histories()],
            None
            if self.refresh_checker is None
            else (
                self.refresh_checker.last_burst_ns,
                self.refresh_checker.bursts_seen,
            ),
        )

    def restore_state(self, state: tuple) -> None:
        audits, checkers, rank_histories, refresh = state
        if len(checkers) != len(self.checkers):
            raise ValueError("checker count mismatch in sanitizer snapshot")
        self.audits = audits
        for checker, entry in zip(self.checkers, checkers):
            open_row, last_act, last_pre, seen, recent = entry
            checker.open_row = open_row
            checker.last_act_ns = last_act
            checker.last_pre_ns = last_pre
            checker.commands_seen = seen
            checker.recent.clear()
            checker.recent.extend(
                TracedCommand(kind=kind, row=row, time_ns=t)
                for kind, row, t in recent
            )
        histories = self._shared_rank_histories()
        if len(rank_histories) != len(histories):
            raise ValueError("rank history count mismatch in snapshot")
        for acts, saved in zip(histories, rank_histories):
            acts.clear()
            acts.extend(saved)
        if refresh is not None:
            if self.refresh_checker is None:
                raise ValueError(
                    "snapshot carries refresh-checker state but none is "
                    "installed"
                )
            last_burst_ns, bursts_seen = refresh
            self.refresh_checker.last_burst_ns = last_burst_ns
            self.refresh_checker.bursts_seen = bursts_seen

    @property
    def commands_checked(self) -> int:
        """Commands validated across all banks so far."""
        return sum(checker.commands_seen for checker in self.checkers)
