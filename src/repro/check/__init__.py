"""Static and runtime analysis guarding the reproduction's invariants.

Three pillars, surfaced through ``python -m repro check``:

* :mod:`repro.check.linter` — an AST determinism linter with
  project-specific rules (RRS001...): every simulation result must be a
  pure function of its :class:`~repro.exec.runner.SweepPoint`, so any
  entropy, wall-clock, or ordering hazard inside the simulation
  packages is flagged unless it flows through
  :class:`repro.utils.rng.DeterministicRng`.
* :mod:`repro.check.sanitizer` — an opt-in (``REPRO_SANITIZE=1``)
  runtime DDR4 protocol checker hooked into the banks' command streams
  plus an RRS swap-machinery auditor, raising a structured
  :class:`~repro.check.sanitizer.ProtocolViolation` on the first break.
* :mod:`repro.check.salt` — the cache-salt drift detector: the
  ``CACHE_SALT`` policy of :mod:`repro.exec.cache` enforced by hashing
  every simulation-relevant source file against a committed manifest.

Plus the interprocedural flow engine (``--flow``), three passes over a
shared :class:`~repro.check.callgraph.ProjectGraph`:

* :mod:`repro.check.entropy` — RNG provenance dataflow (FLW001-003):
  every ``numpy.random.Generator`` reaching simulation state must be
  derived from the seeded root, never consumed in unordered iteration,
  and handed across modules explicitly.
* :mod:`repro.check.oracle` — scalar-oracle/batched-kernel pair
  registry and drift detection (ORA001-003) against the committed
  ``oracle_manifest.json``.
* :mod:`repro.check.hotpath` — advisory allocation lint (HOT001-003)
  over everything reachable from the batched activation path,
  baselined in ``flow_baseline.json``.
"""

from repro.check.callgraph import ProjectGraph
from repro.check.entropy import check_entropy
from repro.check.findings import (
    Finding,
    Reporter,
    RULES,
    SEVERITIES,
    apply_suppressions,
    error_count,
    rule_severity,
    severity_counts,
    sort_findings,
)
from repro.check.hotpath import check_hotpath, load_baseline, write_baseline
from repro.check.oracle import (
    check_oracles,
    discover_pairs,
    write_oracle_manifest,
)
from repro.check.linter import DeterminismLinter, lint_paths, lint_tree
from repro.check.salt import (
    SaltDrift,
    check_salt,
    compute_manifest,
    simulation_relevant_files,
    write_manifest,
)
from repro.check.sanitizer import (
    BankCommandChecker,
    ProtocolSanitizer,
    ProtocolViolation,
    audit_rit,
    sanitize_enabled,
)

__all__ = [
    "RULES",
    "SEVERITIES",
    "BankCommandChecker",
    "DeterminismLinter",
    "Finding",
    "ProjectGraph",
    "ProtocolSanitizer",
    "ProtocolViolation",
    "Reporter",
    "SaltDrift",
    "apply_suppressions",
    "audit_rit",
    "check_entropy",
    "check_hotpath",
    "check_oracles",
    "check_salt",
    "compute_manifest",
    "discover_pairs",
    "error_count",
    "lint_paths",
    "lint_tree",
    "load_baseline",
    "rule_severity",
    "sanitize_enabled",
    "severity_counts",
    "simulation_relevant_files",
    "sort_findings",
    "write_baseline",
    "write_manifest",
    "write_oracle_manifest",
]
