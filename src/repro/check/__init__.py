"""Static and runtime analysis guarding the reproduction's invariants.

Three pillars, surfaced through ``python -m repro check``:

* :mod:`repro.check.linter` — an AST determinism linter with
  project-specific rules (RRS001...): every simulation result must be a
  pure function of its :class:`~repro.exec.runner.SweepPoint`, so any
  entropy, wall-clock, or ordering hazard inside the simulation
  packages is flagged unless it flows through
  :class:`repro.utils.rng.DeterministicRng`.
* :mod:`repro.check.sanitizer` — an opt-in (``REPRO_SANITIZE=1``)
  runtime DDR4 protocol checker hooked into the banks' command streams
  plus an RRS swap-machinery auditor, raising a structured
  :class:`~repro.check.sanitizer.ProtocolViolation` on the first break.
* :mod:`repro.check.salt` — the cache-salt drift detector: the
  ``CACHE_SALT`` policy of :mod:`repro.exec.cache` enforced by hashing
  every simulation-relevant source file against a committed manifest.
"""

from repro.check.findings import Finding, Reporter, RULES
from repro.check.linter import DeterminismLinter, lint_paths, lint_tree
from repro.check.salt import (
    SaltDrift,
    check_salt,
    compute_manifest,
    simulation_relevant_files,
    write_manifest,
)
from repro.check.sanitizer import (
    BankCommandChecker,
    ProtocolSanitizer,
    ProtocolViolation,
    audit_rit,
    sanitize_enabled,
)

__all__ = [
    "RULES",
    "BankCommandChecker",
    "DeterminismLinter",
    "Finding",
    "ProtocolSanitizer",
    "ProtocolViolation",
    "Reporter",
    "SaltDrift",
    "audit_rit",
    "check_salt",
    "compute_manifest",
    "lint_paths",
    "lint_tree",
    "sanitize_enabled",
    "simulation_relevant_files",
    "write_manifest",
]
