"""Cache-salt drift detector.

:mod:`repro.exec.cache` replays cached results for any run whose
``SweepPoint`` hashes to a known key — keys that include ``CACHE_SALT``
but not the simulator's source code. The README's policy ("bump the
salt on any semantics-affecting change") was an honor system; this
module enforces it: a committed manifest records the SHA-256 of every
simulation-relevant source file alongside the salt it was blessed
under. When any of those files changes without either bumping
``CACHE_SALT`` or refreshing the manifest (``repro check --salt
--update-salt``, the "this change is I/O-only" escape hatch), the check
fails CI.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.check.findings import Finding
from repro.exec.cache import CACHE_SALT

# Source files whose behaviour feeds a cached result, as globs relative
# to the repository root. This is the formalization of the informal set
# the CACHE_SALT policy in exec/cache.py describes: DRAM timing and
# geometry, the memory system, mitigations, trackers, attacks, trace
# generation, the RRS core, the deterministic RNG, and the perf harness
# that turns traces into metrics.
SIM_RELEVANT_GLOBS = (
    "src/repro/dram/*.py",
    "src/repro/mem/*.py",
    "src/repro/mitigations/*.py",
    "src/repro/attacks/*.py",
    "src/repro/track/*.py",
    "src/repro/workloads/*.py",
    "src/repro/core/*.py",
    "src/repro/utils/*.py",
    "src/repro/analysis/perf.py",
)

MANIFEST_NAME = "salt_manifest.json"


def default_manifest_path() -> Path:
    """The committed manifest, shipped next to this module."""
    return Path(__file__).with_name(MANIFEST_NAME)


def find_repo_root(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ancestor containing ``pyproject.toml``, else None.

    Tries ``start`` (default: cwd) first, then this module's location —
    so the check works from any cwd inside a source checkout.
    """
    candidates = [Path(start) if start is not None else Path.cwd()]
    candidates.append(Path(__file__).resolve())
    for origin in candidates:
        node = origin.resolve()
        for ancestor in (node, *node.parents):
            if (ancestor / "pyproject.toml").is_file():
                return ancestor
    return None


def simulation_relevant_files(root: Path) -> List[Path]:
    """Every source file whose change can invalidate cached results."""
    root = Path(root)
    files: List[Path] = []
    for pattern in SIM_RELEVANT_GLOBS:
        files.extend(root.glob(pattern))
    return sorted(set(files))


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def compute_manifest(root: Path, salt: str = CACHE_SALT) -> Dict:
    """Hash the current tree into a manifest dict."""
    root = Path(root)
    return {
        "salt": salt,
        "files": {
            path.relative_to(root).as_posix(): _sha256(path)
            for path in simulation_relevant_files(root)
        },
    }


def write_manifest(
    root: Path,
    manifest_path: Optional[Path] = None,
    salt: str = CACHE_SALT,
) -> Path:
    """Bless the current tree: record hashes + salt to the manifest."""
    path = Path(manifest_path) if manifest_path else default_manifest_path()
    manifest = compute_manifest(root, salt=salt)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class SaltDrift:
    """Difference between the recorded manifest and the current tree."""

    recorded_salt: str
    current_salt: str
    changed: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def files_drifted(self) -> bool:
        return bool(self.changed or self.added or self.removed)

    @property
    def salt_bumped(self) -> bool:
        return self.recorded_salt != self.current_salt

    @property
    def is_clean(self) -> bool:
        """True when no action is required."""
        return not self.files_drifted and not self.salt_bumped


def compare_manifest(recorded: Dict, current: Dict) -> SaltDrift:
    """Diff two manifests into a :class:`SaltDrift`."""
    recorded_files: Dict[str, str] = recorded.get("files", {})
    current_files: Dict[str, str] = current.get("files", {})
    drift = SaltDrift(
        recorded_salt=recorded.get("salt", ""),
        current_salt=current.get("salt", ""),
    )
    for name in sorted(set(recorded_files) | set(current_files)):
        if name not in current_files:
            drift.removed.append(name)
        elif name not in recorded_files:
            drift.added.append(name)
        elif recorded_files[name] != current_files[name]:
            drift.changed.append(name)
    return drift


def check_salt(
    root: Path,
    manifest_path: Optional[Path] = None,
    salt: str = CACHE_SALT,
) -> List[Finding]:
    """Findings for the salt-drift pillar (empty list == clean).

    Fails when simulation-relevant sources changed while the manifest
    still records the *current* salt (stale cache hazard), or when the
    salt was bumped / the manifest is missing and the manifest was not
    regenerated alongside.
    """
    path = Path(manifest_path) if manifest_path else default_manifest_path()
    manifest_display = str(path)
    if not path.is_file():
        return [
            Finding(
                rule="SALT001",
                path=manifest_display,
                line=1,
                message=(
                    "salt manifest missing; run `python -m repro check "
                    "--salt --update-salt` to bless the current tree"
                ),
            )
        ]
    try:
        recorded = json.loads(path.read_text())
    except ValueError:
        return [
            Finding(
                rule="SALT001",
                path=manifest_display,
                line=1,
                message="salt manifest is not valid JSON; regenerate it "
                "with `python -m repro check --salt --update-salt`",
            )
        ]
    drift = compare_manifest(recorded, compute_manifest(root, salt=salt))
    if drift.is_clean:
        return []
    findings: List[Finding] = []
    if drift.files_drifted and not drift.salt_bumped:
        details = ", ".join((drift.changed + drift.added + drift.removed)[:8])
        findings.append(
            Finding(
                rule="SALT001",
                path=manifest_display,
                line=1,
                message=(
                    "simulation-relevant sources changed under salt "
                    f"{drift.current_salt!r} ({details}); cached results "
                    "may be stale — bump CACHE_SALT in "
                    "src/repro/exec/cache.py, or mark the change "
                    "I/O-only by regenerating the manifest with "
                    "`python -m repro check --salt --update-salt`"
                ),
            )
        )
    if drift.salt_bumped:
        findings.append(
            Finding(
                rule="SALT001",
                path=manifest_display,
                line=1,
                message=(
                    f"CACHE_SALT is {drift.current_salt!r} but the "
                    f"manifest was blessed under {drift.recorded_salt!r};"
                    " regenerate it with `python -m repro check --salt "
                    "--update-salt`"
                ),
            )
        )
    return findings
