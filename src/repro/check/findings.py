"""Finding records, the rule table, and the text/JSON reporters.

Every check in :mod:`repro.check` — linter rules, salt drift, sanitizer
smoke results — reports through the same :class:`Finding` shape so the
CLI can merge them into one exit code and one ``--format json`` stream.

Suppression syntax (determinism linter only)
--------------------------------------------
A finding is suppressed by a trailing comment on the flagged line or
the line directly above it::

    acts = sum(counts.values())  # repro-check: RRS005 -- integer counts, order-free

The justification after ``--`` is mandatory: a bare suppression is
itself reported as RRS008.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List

# ----------------------------------------------------------------------
# Rule table
# ----------------------------------------------------------------------
# id -> (title, what the rule guards)
RULES: Dict[str, tuple] = {
    "RRS001": (
        "raw-entropy-source",
        "`random` or `numpy.random` used directly inside a simulation "
        "package; all stochastic draws must flow through "
        "repro.utils.rng.DeterministicRng so results are a pure function "
        "of the SweepPoint seed",
    ),
    "RRS002": (
        "wall-clock-dependence",
        "`time`/`datetime` wall-clock read inside a simulation package; "
        "simulated time must come from the simulator, never the host",
    ),
    "RRS003": (
        "os-entropy-source",
        "`os.urandom`, `secrets`, or `uuid.uuid1/uuid4` inside a "
        "simulation package; host entropy breaks run reproducibility",
    ),
    "RRS004": (
        "unordered-set-iteration",
        "iteration over a set literal/comprehension/`set(...)`; set "
        "iteration order is salted per process — sort before iterating",
    ),
    "RRS005": (
        "unordered-float-accumulation",
        "`sum()` over a mapping view in aggregation code; float "
        "accumulation order must be explicit (sort keys or use "
        "math.fsum) so metrics never depend on insertion order",
    ),
    "RRS006": (
        "mutable-default-argument",
        "mutable default argument (list/dict/set/Counter/...); shared "
        "across calls, it leaks state between runs",
    ),
    "RRS007": (
        "hot-path-slots-omission",
        "hot-path class without __slots__ (or dataclass(slots=True)); "
        "per-instance dicts cost measurable time and memory at sweep "
        "scale",
    ),
    "RRS008": (
        "bare-suppression",
        "suppression comment without a `-- justification`; every "
        "suppressed finding must say why it is safe",
    ),
    "RRS009": (
        "bare-print-in-sim-package",
        "`print()` inside src/repro/{mem,dram,core,mitigations,track}; "
        "simulation packages must stay silent — report through returned "
        "metrics or the repro.obs tracer, not stdout",
    ),
    "RRS010": (
        "unseeded-generator",
        "unseeded `default_rng()` or a legacy module-level "
        "`np.random.*` call inside a simulation package; every "
        "`Generator` must be seeded through "
        "repro.utils.rng.DeterministicRng so the stream is a pure "
        "function of the SweepPoint seed",
    ),
    # Non-linter pillars reuse the Finding shape under these ids.
    "SALT001": (
        "cache-salt-drift",
        "a simulation-relevant source file changed without a CACHE_SALT "
        "bump or a manifest refresh",
    ),
    "SAN001": (
        "protocol-violation",
        "the DDR4 protocol sanitizer observed a violation during the "
        "smoke simulation",
    ),
}


@dataclass(frozen=True)
class Finding:
    """One reported problem, anchored to a file location."""

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""

    def __str__(self) -> str:
        title = RULES.get(self.rule, ("", ""))[0]
        label = f"{self.rule}({title})" if title else self.rule
        return f"{self.path}:{self.line}: {label}: {self.message}"


class Reporter:
    """Renders findings as human text or machine JSON."""

    def __init__(self, fmt: str = "text") -> None:
        if fmt not in ("text", "json"):
            raise ValueError(f"unknown report format {fmt!r}")
        self.fmt = fmt

    def render(self, findings: Iterable[Finding]) -> str:
        ordered: List[Finding] = sorted(
            findings, key=lambda f: (f.path, f.line, f.rule)
        )
        if self.fmt == "json":
            return json.dumps(
                {
                    "findings": [asdict(finding) for finding in ordered],
                    "count": len(ordered),
                },
                indent=2,
                sort_keys=True,
            )
        if not ordered:
            return "ok: no findings"
        lines = [str(finding) for finding in ordered]
        lines.append(f"{len(ordered)} finding(s)")
        return "\n".join(lines)
