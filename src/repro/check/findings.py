"""Finding records, the rule table, severity tiers, and the reporters.

Every check in :mod:`repro.check` — linter rules, the flow passes, salt
drift, sanitizer smoke results — reports through the same
:class:`Finding` shape so the CLI can merge them into one exit code and
one ``--format json`` stream.

Severity tiers
--------------
* ``error``  — breaks a reproducibility or equivalence invariant; the
  CLI exit code reflects *only* this tier.
* ``warn``   — suspicious but not provably wrong (e.g. a generator
  shared across module boundaries); printed, never fails the build.
* ``advice`` — performance guidance from the hot-path pass; filtered
  against the committed baseline (``flow_baseline.json``) so only new
  advisories surface.

Suppression syntax (linter and flow passes)
-------------------------------------------
A finding is suppressed by a trailing comment on the flagged line or
the line directly above it::

    acts = sum(counts.values())  # repro-check: RRS005 -- integer counts, order-free

The justification after ``--`` is mandatory: a bare suppression is
itself reported as RRS008.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, NamedTuple, Sequence, Set, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARN = "warn"
SEVERITY_ADVICE = "advice"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARN, SEVERITY_ADVICE)


class RuleInfo(NamedTuple):
    """One row of the rule table (tuple-compatible with older callers)."""

    title: str
    guards: str
    severity: str = SEVERITY_ERROR


# ----------------------------------------------------------------------
# Rule table
# ----------------------------------------------------------------------
RULES: Dict[str, RuleInfo] = {
    "RRS001": RuleInfo(
        "raw-entropy-source",
        "`random` or `numpy.random` used directly inside a simulation "
        "package; all stochastic draws must flow through "
        "repro.utils.rng.DeterministicRng so results are a pure function "
        "of the SweepPoint seed",
    ),
    "RRS002": RuleInfo(
        "wall-clock-dependence",
        "`time`/`datetime` wall-clock read inside a simulation package; "
        "simulated time must come from the simulator, never the host",
    ),
    "RRS003": RuleInfo(
        "os-entropy-source",
        "`os.urandom`, `secrets`, or `uuid.uuid1/uuid4` inside a "
        "simulation package; host entropy breaks run reproducibility",
    ),
    "RRS004": RuleInfo(
        "unordered-set-iteration",
        "iteration over a set literal/comprehension/`set(...)`; set "
        "iteration order is salted per process — sort before iterating",
    ),
    "RRS005": RuleInfo(
        "unordered-float-accumulation",
        "`sum()` over a mapping view in aggregation code; float "
        "accumulation order must be explicit (sort keys or use "
        "math.fsum) so metrics never depend on insertion order",
    ),
    "RRS006": RuleInfo(
        "mutable-default-argument",
        "mutable default argument (list/dict/set/Counter/...); shared "
        "across calls, it leaks state between runs",
    ),
    "RRS007": RuleInfo(
        "hot-path-slots-omission",
        "hot-path class without __slots__ (or dataclass(slots=True)); "
        "per-instance dicts cost measurable time and memory at sweep "
        "scale",
    ),
    "RRS008": RuleInfo(
        "bare-suppression",
        "suppression comment without a `-- justification`; every "
        "suppressed finding must say why it is safe",
    ),
    "RRS009": RuleInfo(
        "bare-print-in-sim-package",
        "`print()` inside src/repro/{mem,dram,core,mitigations,track}; "
        "simulation packages must stay silent — report through returned "
        "metrics or the repro.obs tracer, not stdout",
    ),
    "RRS010": RuleInfo(
        "unseeded-generator",
        "unseeded `default_rng()` / `default_rng(None)`, a direct "
        "`Generator(PCG64())` construction over an unseeded bit "
        "generator, or a legacy module-level `np.random.*` call inside "
        "a simulation package; every `Generator` must be seeded through "
        "repro.utils.rng.DeterministicRng so the stream is a pure "
        "function of the SweepPoint seed",
    ),
    # Flow engine (repro.check.flow): interprocedural entropy analysis.
    "FLW001": RuleInfo(
        "unseeded-generator-flow",
        "a numpy Generator value not derived from the seeded root "
        "(default_rng(seed) / DeterministicRng / .child() / .spawn() "
        "chains) flows into simulation state; tracked through "
        "assignments, calls, attributes, and containers — strictly "
        "stronger than the syntactic RRS010",
    ),
    "FLW002": RuleInfo(
        "generator-unordered-iteration",
        "random generators consumed in unordered (set) iteration; the "
        "per-process hash salt reorders which stream services which "
        "consumer, so results stop being a pure function of the seed",
    ),
    "FLW003": RuleInfo(
        "cross-module-stream-sharing",
        "a generator bound at module level is shared by every importer "
        "without an explicit handoff (constructor/function parameter); "
        "import order then dictates stream interleaving",
        SEVERITY_WARN,
    ),
    # Oracle-pair registry and drift detection.
    "ORA001": RuleInfo(
        "oracle-pair-incomplete",
        "a declared scalar-oracle/batched-kernel pair is missing one "
        "side or has no equivalence test under tests/ exercising it",
    ),
    "ORA002": RuleInfo(
        "oracle-pair-drift",
        "one side of a scalar-oracle/batched-kernel pair changed while "
        "its counterpart and the equivalence tests stayed untouched; "
        "bit-identical replay is no longer evidenced",
    ),
    "ORA003": RuleInfo(
        "oracle-manifest-stale",
        "the committed oracle manifest no longer matches the tree "
        "(pair added/removed, or both sides changed); re-bless with "
        "`python -m repro check --flow --update-oracles` after the "
        "equivalence suites pass",
    ),
    # Hot-path allocation lint (advisory tier).
    "HOT001": RuleInfo(
        "hot-path-allocation",
        "per-activation container/array allocation inside a loop of a "
        "function reachable from the batched activation path",
        SEVERITY_ADVICE,
    ),
    "HOT002": RuleInfo(
        "hot-path-append-loop",
        "list-append loop over array-able data on the batched "
        "activation path; a vectorized numpy construction avoids the "
        "per-element interpreter round trip",
        SEVERITY_ADVICE,
    ),
    "HOT003": RuleInfo(
        "hot-path-repeated-lookup",
        "the same global/attribute chain resolved repeatedly inside a "
        "hot loop; hoist it into a local before the loop",
        SEVERITY_ADVICE,
    ),
    # Snapshot-coverage pass (repro.check.statecheck): every class with
    # run-evolving state must join the repro.state Snapshotable protocol.
    "STA001": RuleInfo(
        "mutable-state-not-snapshotable",
        "a class in a simulation package mutates instance state outside "
        "its constructor but implements neither snapshot_state nor "
        "restore_state (directly or via a project base); checkpoint "
        "resumes silently skip its state — join the protocol or "
        "suppress on the class line with a justification",
    ),
    "STA002": RuleInfo(
        "one-sided-snapshot-protocol",
        "a class implements exactly one of snapshot_state/restore_state; "
        "state that can be captured but not restored (or vice versa) "
        "defeats the checkpoint round-trip oracle",
    ),
    # Cross-run regression detector (repro.obs.regress) over the
    # sweep-fleet run ledger.
    "REG001": RuleInfo(
        "cross-run-metric-drift",
        "a sweep metric (throughput, IPC, or a mitigation counter) "
        "drifted far outside its ledger history for the same "
        "(workload, mitigation, scale) group — robust |z| beyond the "
        "error horizon (median/MAD statistics, so single historical "
        "outliers cannot mask or fake a drift)",
    ),
    "REG002": RuleInfo(
        "cross-run-metric-wobble",
        "a sweep metric sits outside the warn horizon of its ledger "
        "history but inside the error horizon; suspicious, not "
        "build-failing",
        SEVERITY_WARN,
    ),
    "REG003": RuleInfo(
        "insufficient-ledger-history",
        "a (workload, mitigation, scale) group has fewer historical "
        "ledger runs than the detector needs for a robust baseline; "
        "drift cannot be judged yet",
        SEVERITY_ADVICE,
    ),
    # Non-linter pillars reuse the Finding shape under these ids.
    "SALT001": RuleInfo(
        "cache-salt-drift",
        "a simulation-relevant source file changed without a CACHE_SALT "
        "bump or a manifest refresh",
    ),
    "SAN001": RuleInfo(
        "protocol-violation",
        "the DDR4 protocol sanitizer observed a violation during the "
        "smoke simulation",
    ),
}


def rule_severity(rule: str) -> str:
    """Severity tier for a rule id (unknown ids are errors)."""
    info = RULES.get(rule)
    return info.severity if info is not None else SEVERITY_ERROR


@dataclass(frozen=True)
class Finding:
    """One reported problem, anchored to a file location."""

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""
    severity: str = ""

    def __post_init__(self) -> None:
        if not self.severity:
            object.__setattr__(self, "severity", rule_severity(self.rule))

    def __str__(self) -> str:
        title = RULES.get(self.rule, ("", ""))[0]
        label = f"{self.rule}({title})" if title else self.rule
        return (
            f"{self.path}:{self.line}: [{self.severity}] {label}: "
            f"{self.message}"
        )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """The one canonical order: ``(path, line, rule)``.

    Stable across runs and machines, so text and JSON reports diff
    cleanly between commits.
    """
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def severity_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    """Finding counts per severity tier (all tiers always present)."""
    counts = {tier: 0 for tier in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return counts


def error_count(findings: Iterable[Finding]) -> int:
    """How many findings sit in the error tier (drives the exit code)."""
    return sum(1 for f in findings if f.severity == SEVERITY_ERROR)


# ----------------------------------------------------------------------
# Suppression comments (shared by the linter and the flow passes)
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(
    r"#\s*repro-check:\s*"
    r"(?P<ids>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"\s*(?:--\s*(?P<why>\S.*\S|\S))?"
)


def parse_suppressions(source: str) -> Dict[int, Tuple[Set[str], bool]]:
    """Per-line suppressions: line -> (rule ids, has justification)."""
    out: Dict[int, Tuple[Set[str], bool]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group("ids").split(",")}
        out[lineno] = (ids, match.group("why") is not None)
    return out


def apply_suppressions(
    findings: Sequence[Finding], source: str, path: str
) -> List[Finding]:
    """Drop justified-suppressed findings; report bare suppressions.

    A suppression matches when its comment sits on the flagged line or
    the line directly above. A match without a ``-- why`` justification
    does not suppress and is itself reported once as RRS008.
    """
    suppressions = parse_suppressions(source)
    lines = source.splitlines()
    kept: List[Finding] = []
    used_bare: Set[int] = set()
    for finding in findings:
        suppressed = False
        for lineno in (finding.line, finding.line - 1):
            entry = suppressions.get(lineno)
            if entry is None or finding.rule not in entry[0]:
                continue
            if entry[1]:
                suppressed = True
            else:
                used_bare.add(lineno)
            break
        if not suppressed:
            kept.append(finding)
    for lineno in sorted(used_bare):
        kept.append(
            Finding(
                rule="RRS008",
                path=path,
                line=lineno,
                message=(
                    "suppression without a justification; append "
                    "`-- <why this is safe>`"
                ),
                snippet=lines[lineno - 1].strip() if lineno <= len(lines) else "",
            )
        )
    return kept


class Reporter:
    """Renders findings as human text or machine JSON."""

    def __init__(self, fmt: str = "text") -> None:
        if fmt not in ("text", "json"):
            raise ValueError(f"unknown report format {fmt!r}")
        self.fmt = fmt

    def render(self, findings: Iterable[Finding]) -> str:
        ordered = sort_findings(findings)
        counts = severity_counts(ordered)
        if self.fmt == "json":
            return json.dumps(
                {
                    "findings": [asdict(finding) for finding in ordered],
                    "count": len(ordered),
                    "counts": counts,
                },
                indent=2,
                sort_keys=True,
            )
        if not ordered:
            return "ok: no findings"
        lines = [str(finding) for finding in ordered]
        lines.append(
            f"{len(ordered)} finding(s): "
            + ", ".join(f"{counts[tier]} {tier}" for tier in SEVERITIES)
        )
        return "\n".join(lines)
