"""The ``python -m repro check`` entry point.

Runs up to four pillars and folds everything into one exit code:

* ``--rules``  — the determinism linter over the simulation packages
  (or over explicit ``--paths``);
* ``--salt``   — the cache-salt drift detector (``--update-salt``
  re-blesses the tree after an I/O-only change or a salt bump);
* ``--sanitize`` — a short smoke simulation with the DDR4 protocol
  sanitizer installed, proving the command streams it emits are legal;
* ``--flow``  — the interprocedural flow engine: entropy provenance
  (FLW...), oracle-pair drift against the committed
  ``oracle_manifest.json`` (ORA..., re-blessed by ``--update-oracles``),
  the advisory hot-path allocation lint (HOT..., baselined in
  ``flow_baseline.json``, re-blessed by ``--update-baseline``), and the
  snapshot-coverage pass (STA...: mutable-sim-state classes missing the
  ``repro.state`` Snapshotable protocol).

With no pillar flag, all four run. ``--format json`` emits a single
machine-readable findings document. The exit code reflects only the
error tier: warn and advice findings are printed but never fail the
build.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.check.callgraph import ProjectGraph
from repro.check.entropy import check_entropy
from repro.check.findings import Finding, Reporter, error_count
from repro.check.hotpath import check_hotpath, write_baseline
from repro.check.linter import lint_paths, lint_tree
from repro.check.oracle import check_oracles, write_oracle_manifest
from repro.check.salt import check_salt, find_repo_root, write_manifest
from repro.check.sanitizer import ProtocolSanitizer, ProtocolViolation
from repro.check.statecheck import check_statecheck


def _run_rules(root: Optional[Path], paths: List[str]) -> List[Finding]:
    if paths:
        return lint_paths([Path(p) for p in paths], root=root)
    if root is None:
        return [
            Finding(
                rule="RRS001",
                path="<repo>",
                line=1,
                message="cannot locate the repository root (no "
                "pyproject.toml above cwd); pass --root or --paths",
            )
        ]
    return lint_tree(root)


def _run_salt(root: Optional[Path], update: bool, verbose: bool) -> List[Finding]:
    if root is None:
        return [
            Finding(
                rule="SALT001",
                path="<repo>",
                line=1,
                message="cannot locate the repository root (no "
                "pyproject.toml above cwd); pass --root",
            )
        ]
    if update:
        path = write_manifest(root)
        if verbose:
            print(f"salt manifest refreshed: {path}")
    return check_salt(root)


def _run_sanitize_smoke(verbose: bool, records: int = 8000) -> List[Finding]:
    """A small RRS run with every runtime checker installed.

    ``hmmer`` at epoch scale 1/128 swaps hundreds of rows and crosses a
    refresh-window boundary within ~8k records, so the smoke exercises
    ACT/PRE/CAS streams on every bank, refresh cadence, the swap path,
    RIT lock-bit rollover, and the CAT shadow — any
    :class:`ProtocolViolation` becomes a finding instead of a crash, so
    the CLI can report it.
    """
    from repro.core.config import RRSConfig
    from repro.core.rrs import RandomizedRowSwap
    from repro.dram.config import DRAMConfig
    from repro.mem.cpu import CoreConfig
    from repro.mem.system import SystemConfig, SystemSimulator
    from repro.workloads.suites import get_workload
    from repro.workloads.synthetic import SyntheticTraceGenerator

    scale = 128
    dram = DRAMConfig().scaled(scale)
    config = SystemConfig(dram=dram, core=CoreConfig(), cores=2)
    mitigation = RandomizedRowSwap(
        RRSConfig.for_threshold(4800, DRAMConfig()).scaled(scale),
        dram,
        rit_use_cat=True,
    )
    simulator = SystemSimulator(config, mitigation=mitigation)
    sanitizer = ProtocolSanitizer(dram).install(simulator)
    spec = get_workload("hmmer")
    traces = [
        SyntheticTraceGenerator(spec, core_id=core).records(records)
        for core in range(config.cores)
    ]
    try:
        simulator.run(traces, workload=spec.name)
    except ProtocolViolation as violation:
        return [
            Finding(
                rule=violation.rule,
                path="<sanitizer-smoke>",
                line=1,
                message=str(violation),
            )
        ]
    if verbose:
        print(
            f"sanitizer smoke: {sanitizer.commands_checked} commands, "
            f"{sanitizer.audits} swap audits, 0 violations"
        )
    return []


def _run_flow(
    root: Optional[Path],
    update_oracles: bool,
    update_baseline: bool,
    verbose: bool,
) -> List[Finding]:
    if root is None:
        return [
            Finding(
                rule="FLW001",
                path="<repo>",
                line=1,
                message="cannot locate the repository root (no "
                "pyproject.toml above cwd); pass --root",
            )
        ]
    graph = ProjectGraph.build(root)
    if update_oracles:
        path = write_oracle_manifest(graph)
        if verbose:
            print(f"oracle manifest refreshed: {path}")
    if update_baseline:
        path = write_baseline(graph)
        if verbose:
            print(f"hot-path advisory baseline refreshed: {path}")
    findings: List[Finding] = []
    findings.extend(check_entropy(graph))
    findings.extend(check_oracles(graph))
    findings.extend(check_hotpath(graph))
    findings.extend(check_statecheck(graph))
    return findings


def run_check(args) -> int:
    """Execute the selected pillars; returns the process exit code."""
    flow = getattr(args, "flow", False)
    pillars_requested = args.rules or args.salt or args.sanitize or flow
    run_rules = args.rules or not pillars_requested
    run_salt = args.salt or not pillars_requested
    run_sanitize = args.sanitize or not pillars_requested
    run_flow = flow or not pillars_requested

    verbose = args.format == "text"
    root = find_repo_root(Path(args.root) if args.root else None)
    findings: List[Finding] = []
    if run_rules:
        findings.extend(_run_rules(root, args.paths))
    if run_salt:
        findings.extend(_run_salt(root, args.update_salt, verbose))
    if run_sanitize:
        findings.extend(_run_sanitize_smoke(verbose))
    if run_flow:
        findings.extend(
            _run_flow(
                root,
                getattr(args, "update_oracles", False),
                getattr(args, "update_baseline", False),
                verbose,
            )
        )

    print(Reporter(args.format).render(findings))
    return 1 if error_count(findings) else 0
