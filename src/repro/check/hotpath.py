"""Hot-path allocation lint (advisory rules HOT001-HOT003).

The simulation hot path is whatever the batched activation kernels can
reach: ``on_activation_batch`` implementations, the array-state
trackers' block observers, and the batched decode kernels. Those
functions run once per *batch*, but anything they do inside a loop runs
per activation — at Table-4 sweep scale that is hundreds of millions of
iterations, so a stray list-comprehension or repeated ``self.a.b``
chain is real wall-clock.

This pass walks the call graph from those roots and flags, inside loop
bodies only:

* **HOT001** — container/ndarray allocation (``list()``/``dict()``/
  ``set()``/literal displays with elements/``np.zeros``-family calls)
  constructed fresh every iteration;
* **HOT002** — ``xs.append(...)`` loops, the classic scalar fallback
  that a vectorized construction replaces;
* **HOT003** — the same multi-part attribute chain read three or more
  times inside one loop body; hoist it into a local.

Everything here is **advice** tier: it never fails the build, and the
committed baseline (``flow_baseline.json``, next to this module)
records the advisories that predate the pass so only *new* ones
surface in reports. Re-bless with
``python -m repro check --flow --update-baseline``.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.check.callgraph import FunctionInfo, ProjectGraph
from repro.check.findings import Finding, apply_suppressions, sort_findings

BASELINE_NAME = "flow_baseline.json"

# Unqualified names whose project definitions seed the hot-path walk.
HOT_ROOT_NAMES = (
    "on_activation_batch",
    "observe_block",
    "decode_batch",
    "encode_batch",
    "run_batch",
)

_ALLOC_CALLS = {"list", "dict", "set", "bytearray"}
_NP_ALLOC_ATTRS = {"zeros", "ones", "empty", "full", "arange", "array", "concatenate"}


def default_baseline_path() -> Path:
    """The committed advisory baseline, shipped next to this module."""
    return Path(__file__).with_name(BASELINE_NAME)


def baseline_key(finding: Finding, qualname: str) -> str:
    """Line-number-free identity: stable across unrelated edits."""
    return f"{finding.rule}:{finding.path}:{qualname}"


# ----------------------------------------------------------------------
# Per-function inspection
# ----------------------------------------------------------------------
class _LoopInspector:
    """Flags allocation patterns inside the loops of one function."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.findings: List[Finding] = []
        # finding -> owning qualname, for baseline keying
        self.owners: Dict[int, str] = {}

    def run(self) -> List[Finding]:
        for node in ast.walk(self.info.node):
            if isinstance(node, (ast.For, ast.While)):
                self._inspect_loop(node)
        return self.findings

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        finding = Finding(
            rule=rule,
            path=self.info.path,
            line=getattr(node, "lineno", self.info.node.lineno),
            message=f"{message} (in {self.info.qualname})",
        )
        self.findings.append(finding)
        self.owners[id(finding)] = self.info.qualname

    def _inspect_loop(self, loop: ast.AST) -> None:
        body: List[ast.stmt] = list(loop.body) + list(
            getattr(loop, "orelse", [])
        )
        chains: Counter = Counter()
        chain_nodes: Dict[str, ast.AST] = {}
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.For, ast.While)):
                # Nested loops are inspected on their own visit; pruning
                # their subtree keeps each node flagged exactly once.
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Call):
                self._check_alloc_call(node)
                self._check_append(node)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                self._add(
                    "HOT001",
                    node,
                    "comprehension allocated every iteration of a "
                    "hot loop; build once outside or vectorize",
                )
            elif isinstance(node, (ast.List, ast.Dict, ast.Set)) and (
                getattr(node, "elts", None) or getattr(node, "keys", None)
            ):
                self._add(
                    "HOT001",
                    node,
                    "container literal allocated every iteration of "
                    "a hot loop; hoist or vectorize",
                )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Attribute
            ):
                chain = _attr_chain(node)
                if chain is not None:
                    chains[chain] += 1
                    chain_nodes.setdefault(chain, node)
        for chain, count in sorted(chains.items()):
            if count >= 3:
                self._add(
                    "HOT003",
                    chain_nodes[chain],
                    f"attribute chain `{chain}` resolved {count} times "
                    "inside one hot loop; hoist it into a local",
                )

    def _check_alloc_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ALLOC_CALLS:
            self._add(
                "HOT001",
                node,
                f"`{func.id}()` allocated every iteration of a hot "
                "loop; reuse a preallocated container",
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _NP_ALLOC_ATTRS
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            self._add(
                "HOT001",
                node,
                f"`{func.value.id}.{func.attr}(...)` allocated every "
                "iteration of a hot loop; preallocate outside and fill",
            )

    def _check_append(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "append"
            and isinstance(func.value, ast.Name)
        ):
            self._add(
                "HOT002",
                node,
                f"`{func.value.id}.append(...)` in a hot loop; a "
                "vectorized numpy construction avoids the per-element "
                "interpreter round trip",
            )


def _attr_chain(node: ast.Attribute) -> Optional[str]:
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def hot_roots(graph: ProjectGraph) -> Set[str]:
    roots: Set[str] = set()
    for name in HOT_ROOT_NAMES:
        roots.update(info.qualname for info in graph.functions_named(name))
    return roots


def check_hotpath(
    graph: ProjectGraph, baseline_path: Optional[Path] = None
) -> List[Finding]:
    """New (non-baselined) advisories on the batched activation path."""
    raw, owners = _collect(graph)
    known = load_baseline(baseline_path)
    kept = [
        finding
        for finding in raw
        if baseline_key(finding, owners[id(finding)]) not in known
    ]
    # Honor the shared `# repro-check: <RULE> -- why` suppression
    # contract (repro.check.findings) — the linter and entropy passes
    # already do; hot-path advisories are no different.
    by_path: Dict[str, List[Finding]] = {}
    for finding in kept:
        by_path.setdefault(finding.path, []).append(finding)
    final: List[Finding] = []
    for path, group in by_path.items():
        try:
            source = (graph.root / path).read_text()
        except OSError:
            final.extend(group)
            continue
        final.extend(apply_suppressions(group, source, path))
    return sort_findings(final)


def _collect(graph: ProjectGraph):
    findings: List[Finding] = []
    owners: Dict[int, str] = {}
    for qualname in sorted(graph.reachable_from(hot_roots(graph))):
        inspector = _LoopInspector(graph.functions[qualname])
        findings.extend(inspector.run())
        owners.update(inspector.owners)
    return findings, owners


def load_baseline(baseline_path: Optional[Path] = None) -> Set[str]:
    path = Path(baseline_path) if baseline_path else default_baseline_path()
    if not path.is_file():
        return set()
    try:
        payload = json.loads(path.read_text())
    except ValueError:
        return set()
    return set(payload.get("advisories", []))


def write_baseline(
    graph: ProjectGraph, baseline_path: Optional[Path] = None
) -> Path:
    """Bless every current advisory so only future ones surface."""
    path = Path(baseline_path) if baseline_path else default_baseline_path()
    raw, owners = _collect(graph)
    keys = sorted({baseline_key(f, owners[id(f)]) for f in raw})
    path.write_text(
        json.dumps({"advisories": keys}, indent=2, sort_keys=True) + "\n"
    )
    return path
