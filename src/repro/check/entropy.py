"""Interprocedural entropy-flow analysis (rules FLW001-FLW003).

The security tables this reproduction publishes (Table 4 escape
probabilities, the RIT bijectivity audits) assume every random draw in
the process descends from the root experiment seed. The syntactic
RRS010 rule catches ``default_rng()`` written in place; this pass
catches what syntax cannot: a generator constructed unseeded in a
helper and *flowed* into simulation state through assignments, call
returns, attributes, and containers.

Abstract domain per expression::

    SEEDED    derived from default_rng(seed) / DeterministicRng /
              .child() / .spawn() chains — provably rooted in the seed
    UNSEEDED  derived from OS entropy (default_rng(), Generator(PCG64()))
    ("set", s) / ("seq", s)   containers of generators in state ``s``
    OPAQUE    not a generator, or provenance unknown (never flagged)

The analysis runs a small fixpoint over the project call graph:
function return states and parameter states (joined over every
resolved call site) propagate until stable, then the final round
reports:

* FLW001 (error) — construction of an UNSEEDED generator anywhere in
  ``src/repro``;
* FLW002 (error) — a generator container consumed in unordered (set)
  iteration, which re-maps streams to consumers per process;
* FLW003 (warn) — a generator bound at module level, i.e. one stream
  shared by every importer with no explicit handoff.

Deliberately conservative: OPAQUE values are never flagged, so the
pass has no false positives on non-RNG code, at the cost of missing
provenance it cannot prove.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple, Union

from repro.check.callgraph import FunctionInfo, ProjectGraph
from repro.check.findings import Finding, apply_suppressions, sort_findings

SEEDED = "seeded"
UNSEEDED = "unseeded"
OPAQUE = "opaque"

State = Union[str, Tuple[str, str]]  # scalar, or ("set"|"seq", element)

_MAX_ROUNDS = 8

# numpy BitGenerator constructors (seed policed when wrapped by
# Generator(...)).
_BITGEN_NAMES = {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}

# Generator methods that *draw* (result is data, not a stream).
_DRAW_METHODS = {
    "integers", "random", "choice", "shuffle", "permutation", "normal",
    "uniform", "geometric", "poisson", "binomial", "exponential",
    "standard_normal", "bytes", "bit_generator", "randint",
}


def _element(state: State) -> State:
    if isinstance(state, tuple):
        return state[1]
    return OPAQUE


def _is_rng(state: State) -> bool:
    return state in (SEEDED, UNSEEDED)


def _rank(state: State) -> int:
    if isinstance(state, tuple):
        return 2 + _rank(state[1])
    return {OPAQUE: 0, SEEDED: 1, UNSEEDED: 5}[state]


def join(a: State, b: State) -> State:
    """Least upper bound: prefer the more alarming provenance."""
    if a == b:
        return a
    if isinstance(a, tuple) and isinstance(b, tuple) and a[0] == b[0]:
        return (a[0], join(a[1], b[1]))
    return a if _rank(a) >= _rank(b) else b


def _seed_missing(node: ast.Call) -> bool:
    """True when a ctor call passes no seed, or a literal ``None``."""
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in node.keywords:
        if keyword.arg == "seed":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
    return True


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class EntropyFlow:
    """The fixpoint driver; one instance analyses one project graph."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        # Interprocedural summaries, refined across rounds.
        self._returns: Dict[str, State] = {}
        self._params: Dict[str, Dict[str, State]] = {}
        self._class_attrs: Dict[str, State] = {}  # "module.Class.attr"
        self._globals: Dict[str, State] = {}  # "module.name"
        self._findings: List[Finding] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        for _ in range(_MAX_ROUNDS):
            before = (
                dict(self._returns),
                {k: dict(v) for k, v in self._params.items()},
                dict(self._class_attrs),
                dict(self._globals),
            )
            self._findings = []
            for module in self.graph.modules.values():
                self._analyze_module_level(module.name)
            for info in self.graph.functions.values():
                self._analyze_function(info)
            after = (
                dict(self._returns),
                {k: dict(v) for k, v in self._params.items()},
                dict(self._class_attrs),
                dict(self._globals),
            )
            if before == after:
                break
        return self._suppressed(self._findings)

    def _suppressed(self, findings: List[Finding]) -> List[Finding]:
        by_path: Dict[str, List[Finding]] = {}
        for finding in findings:
            by_path.setdefault(finding.path, []).append(finding)
        sources = {m.path: m.source for m in self.graph.modules.values()}
        kept: List[Finding] = []
        for path, group in by_path.items():
            source = sources.get(path)
            if source is None:
                kept.extend(group)
            else:
                kept.extend(apply_suppressions(group, source, path))
        return sort_findings(kept)

    # ------------------------------------------------------------------
    # Analysis passes
    # ------------------------------------------------------------------
    def _analyze_module_level(self, module_name: str) -> None:
        module = self.graph.modules[module_name]
        ctx = _FunctionContext(self, None, module_name, module.path)
        for statement in module.tree.body:
            if isinstance(statement, ast.Assign):
                state = ctx.eval(statement.value)
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        key = f"{module_name}.{target.id}"
                        self._globals[key] = join(
                            self._globals.get(key, state), state
                        )
                        if _is_rng(state) or (
                            isinstance(state, tuple) and _is_rng(state[1])
                        ):
                            self._findings.append(
                                Finding(
                                    rule="FLW003",
                                    path=module.path,
                                    line=statement.lineno,
                                    message=(
                                        f"generator bound to module-level "
                                        f"{target.id!r} is one stream shared "
                                        "by every importer; pass it through "
                                        "a constructor or function "
                                        "parameter instead"
                                    ),
                                    snippet=self._snippet(module.path, statement.lineno),
                                )
                            )
            elif isinstance(statement, ast.Expr):
                ctx.eval(statement.value)

    def _analyze_function(self, info: FunctionInfo) -> None:
        module = self.graph.modules[info.module]
        ctx = _FunctionContext(self, info, info.module, module.path)
        params = self._params.get(info.qualname, {})
        node = info.node
        arg_names = [a.arg for a in node.args.args]
        if info.class_name and arg_names and arg_names[0] == "self":
            arg_names = arg_names[1:]
        for name in arg_names + [a.arg for a in node.args.kwonlyargs]:
            ctx.env[name] = params.get(name, OPAQUE)
        ctx.exec_body(node.body)

    def _snippet(self, path: str, line: int) -> str:
        for module in self.graph.modules.values():
            if module.path == path:
                lines = module.source.splitlines()
                if 1 <= line <= len(lines):
                    return lines[line - 1].strip()
        return ""

    # ------------------------------------------------------------------
    # Summary plumbing (called from _FunctionContext)
    # ------------------------------------------------------------------
    def record_return(self, qualname: str, state: State) -> None:
        self._returns[qualname] = join(self._returns.get(qualname, OPAQUE), state)

    def record_argument(self, qualname: str, param: str, state: State) -> None:
        table = self._params.setdefault(qualname, {})
        table[param] = join(table.get(param, OPAQUE), state)


class _FunctionContext:
    """Evaluates one function body (or module top level)."""

    def __init__(
        self,
        analysis: EntropyFlow,
        info: Optional[FunctionInfo],
        module_name: str,
        path: str,
    ) -> None:
        self.analysis = analysis
        self.graph = analysis.graph
        self.info = info
        self.module_name = module_name
        self.path = path
        self.env: Dict[str, State] = {}

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_body(self, body) -> None:
        for statement in body:
            self.exec_statement(statement)

    def exec_statement(self, statement: ast.AST) -> None:
        if isinstance(statement, ast.Assign):
            state = self.eval(statement.value)
            for target in statement.targets:
                self._bind(target, state)
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            self._bind(statement.target, self.eval(statement.value))
        elif isinstance(statement, ast.AugAssign):
            self.eval(statement.value)
        elif isinstance(statement, ast.Return):
            if statement.value is not None and self.info is not None:
                self.analysis.record_return(
                    self.info.qualname, self.eval(statement.value)
                )
        elif isinstance(statement, ast.Expr):
            self.eval(statement.value)
        elif isinstance(statement, ast.For):
            self._check_unordered_iteration(statement.iter)
            self._bind(statement.target, _element(self.eval(statement.iter)))
            self.exec_body(statement.body)
            self.exec_body(statement.orelse)
        elif isinstance(statement, ast.While):
            self.eval(statement.test)
            self.exec_body(statement.body)
            self.exec_body(statement.orelse)
        elif isinstance(statement, ast.If):
            self.eval(statement.test)
            self.exec_body(statement.body)
            self.exec_body(statement.orelse)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self.eval(item.context_expr)
            self.exec_body(statement.body)
        elif isinstance(statement, ast.Try):
            self.exec_body(statement.body)
            for handler in statement.handlers:
                self.exec_body(handler.body)
            self.exec_body(statement.orelse)
            self.exec_body(statement.finalbody)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested defs are indexed and analysed on their own
        elif isinstance(statement, ast.ClassDef):
            pass

    def _bind(self, target: ast.AST, state: State) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = state
        elif isinstance(target, ast.Attribute):
            owner = target.value
            if (
                isinstance(owner, ast.Name)
                and owner.id == "self"
                and self.info is not None
                and self.info.class_name
            ):
                key = f"{self.module_name}.{self.info.class_name}.{target.attr}"
                attrs = self.analysis._class_attrs
                attrs[key] = join(attrs.get(key, state), state)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, _element(state) if not _is_rng(state) else state)

    def _check_unordered_iteration(self, iter_node: ast.AST) -> None:
        state = self.eval(iter_node)
        unordered = isinstance(state, tuple) and state[0] == "set"
        if isinstance(iter_node, ast.Call):
            name = _callee_name(iter_node.func)
            if name in ("set", "frozenset") and iter_node.args:
                inner = self.eval(iter_node.args[0])
                if isinstance(inner, tuple) and _is_rng(inner[1]):
                    unordered, state = True, ("set", inner[1])
        if unordered and _is_rng(state[1]):
            self.analysis._findings.append(
                Finding(
                    rule="FLW002",
                    path=self.path,
                    line=iter_node.lineno,
                    message=(
                        "random generators iterated in set order; the "
                        "per-process hash salt re-maps streams to "
                        "consumers — iterate a sorted/stable sequence"
                    ),
                    snippet=self.analysis._snippet(self.path, iter_node.lineno),
                )
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, node: ast.AST) -> State:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self.analysis._globals.get(
                f"{self.module_name}.{node.id}", OPAQUE
            )
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            state = OPAQUE
            for element in node.elts:
                state = join(state, self.eval(element))
            return ("seq", state) if _is_rng(state) else OPAQUE
        if isinstance(node, ast.Set):
            state = OPAQUE
            for element in node.elts:
                state = join(state, self.eval(element))
            return ("set", state) if _is_rng(state) else OPAQUE
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, "seq")
        if isinstance(node, ast.SetComp):
            return self._eval_comprehension(node, "set")
        if isinstance(node, ast.Subscript):
            owner = self.eval(node.value)
            if isinstance(owner, tuple):
                if isinstance(node.slice, ast.Slice):
                    return owner
                return owner[1]
            return OPAQUE
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            state: State = OPAQUE
            for value in node.values:
                state = join(state, self.eval(value))
            return state
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Compare)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return OPAQUE
        return OPAQUE

    def _eval_comprehension(self, node, kind: str) -> State:
        for generator in node.generators:
            self._check_unordered_iteration(generator.iter)
            self._bind(generator.target, _element(self.eval(generator.iter)))
        state = self.eval(node.elt)
        return (kind, state) if _is_rng(state) else OPAQUE

    def _eval_attribute(self, node: ast.Attribute) -> State:
        owner = node.value
        if (
            isinstance(owner, ast.Name)
            and owner.id == "self"
            and self.info is not None
            and self.info.class_name
        ):
            key = f"{self.module_name}.{self.info.class_name}.{node.attr}"
            return self.analysis._class_attrs.get(key, OPAQUE)
        owner_state = self.eval(owner)
        if node.attr == "generator" and _is_rng(owner_state):
            # DeterministicRng.generator exposes the underlying stream.
            return owner_state
        return OPAQUE

    def _eval_call(self, node: ast.Call) -> State:
        name = _callee_name(node.func)
        # 1. Generator constructors.
        if name == "default_rng":
            for arg in node.args:
                self.eval(arg)
            if _seed_missing(node):
                self._flag_unseeded(node, "default_rng() without a seed")
                return UNSEEDED
            return SEEDED
        if name == "DeterministicRng":
            for arg in node.args:
                self.eval(arg)
            return SEEDED
        if name == "Generator" and node.args:
            bitgen = node.args[0]
            if (
                isinstance(bitgen, ast.Call)
                and _callee_name(bitgen.func) in _BITGEN_NAMES
            ):
                if _seed_missing(bitgen):
                    self._flag_unseeded(
                        node,
                        f"Generator({_callee_name(bitgen.func)}()) over an "
                        "unseeded bit generator",
                    )
                    return UNSEEDED
                return SEEDED
            return OPAQUE
        # 2. Methods on tracked values.
        if isinstance(node.func, ast.Attribute):
            owner_state = self.eval(node.func.value)
            for arg in node.args:
                self.eval(arg)
            if _is_rng(owner_state):
                if name in ("child",):
                    return owner_state
                if name == "spawn":
                    return ("seq", owner_state)
                if name in _DRAW_METHODS:
                    return OPAQUE
            if isinstance(owner_state, tuple) and name == "pop":
                return owner_state[1]
        # 3. Project calls: propagate arguments, use return summaries.
        state: State = OPAQUE
        if self.info is not None:
            targets = self.graph.resolve_call(node.func, self.info)
        else:
            targets = set()
        for qualname in targets:
            callee = self.graph.functions.get(qualname)
            if callee is None:
                continue
            self._propagate_arguments(node, callee)
            state = join(state, self.analysis._returns.get(qualname, OPAQUE))
        if not targets:
            for arg in node.args:
                self.eval(arg)
            for keyword in node.keywords:
                self.eval(keyword.value)
        if name in ("sorted", "list", "tuple"):
            inner = self.eval(node.args[0]) if node.args else OPAQUE
            if isinstance(inner, tuple):
                return ("seq", inner[1])
        return state

    def _propagate_arguments(self, node: ast.Call, callee: FunctionInfo) -> None:
        params = [a.arg for a in callee.node.args.args]
        if callee.class_name and params and params[0] == "self":
            params = params[1:]
        for position, arg in enumerate(node.args):
            state = self.eval(arg)
            if position < len(params) and state != OPAQUE:
                self.analysis.record_argument(
                    callee.qualname, params[position], state
                )
        keyword_params = set(params) | {
            a.arg for a in callee.node.args.kwonlyargs
        }
        for keyword in node.keywords:
            state = self.eval(keyword.value)
            if keyword.arg in keyword_params and state != OPAQUE:
                self.analysis.record_argument(
                    callee.qualname, keyword.arg, state
                )

    def _flag_unseeded(self, node: ast.AST, what: str) -> None:
        self.analysis._findings.append(
            Finding(
                rule="FLW001",
                path=self.path,
                line=node.lineno,
                message=(
                    f"{what} draws OS entropy, so this stream is not "
                    "reachable from the seeded root; derive it from "
                    "repro.utils.rng.DeterministicRng "
                    "(default_rng(seed) / .child() / .spawn())"
                ),
                snippet=self.analysis._snippet(self.path, node.lineno),
            )
        )


def check_entropy(graph: ProjectGraph) -> List[Finding]:
    """Run the entropy-flow pass over a built project graph."""
    return EntropyFlow(graph).run()
