"""Oracle-pair registry and static drift detection (rules ORA001-ORA003).

Every batched kernel in this repo is justified by a scalar *oracle* it
must stay bit-identical to: ``on_activation_batch`` replays through
``on_activation``, block decode matches ``records_reference``,
``ArrayMisraGries`` matches ``MisraGriesTracker``, the vectorized Monte
Carlo matches its scalar reference. The equivalence suites prove each
pair equal *today*; nothing stopped an edit to one side from silently
invalidating that proof tomorrow. This pass does.

Pair discovery
--------------
* **Declared**: a marker comment on the ``def``/``class`` line (or the
  line directly above it)::

      # repro-oracle: mitigation-activation -- oracle
      def on_activation(self, ...):

      # repro-oracle: mitigation-activation -- kernel
      def on_activation_batch(self, ...):

* **Auto-discovered** naming conventions, within one class or module
  scope (skipped when a marker already claims the definition):
  ``f`` ↔ ``f_batch``, ``f_reference`` ↔ ``f``, and
  ``observe`` ↔ ``observe_block``.

Fingerprints and the manifest
-----------------------------
Each side's AST is normalized (docstrings stripped, no line/column
attributes) and hashed, so comments, blank lines, and moves never
drift — only semantic edits do. ``oracle_manifest.json`` (committed
next to this module, same workflow as ``salt_manifest.json``) records
both fingerprints plus the hash of every test file under ``tests/``
that references either side by name.

Drift verdicts
--------------
* one side changed, counterpart AND tests untouched → **ORA002**
  (error): the equivalence evidence no longer covers the code;
* anything else out of sync with the manifest (both sides changed,
  pair added/removed, tests-accompanied change) → **ORA003** (error):
  re-bless with ``python -m repro check --flow --update-oracles`` once
  the equivalence suites pass;
* a pair missing one side, or with no referencing test file at all →
  **ORA001** (error).
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.check.callgraph import ProjectGraph
from repro.check.findings import Finding, sort_findings

ORACLE_MANIFEST_NAME = "oracle_manifest.json"

_MARKER_RE = re.compile(
    r"#\s*repro-oracle:\s*(?P<id>[A-Za-z0-9_.\-]+)\s*--\s*(?P<role>oracle|kernel)"
)

# (kernel suffix convention, oracle name for a given kernel name)
_CONVENTIONS = (
    ("batch", lambda name: name[: -len("_batch")] if name.endswith("_batch") else None),
    ("reference", lambda name: name + "_reference"),
    ("block", lambda name: "observe" if name == "observe_block" else None),
)


def default_oracle_manifest_path() -> Path:
    """The committed manifest, shipped next to this module."""
    return Path(__file__).with_name(ORACLE_MANIFEST_NAME)


@dataclass(frozen=True)
class OracleSide:
    """One side (oracle or kernel) of a pair."""

    qualname: str
    path: str
    line: int
    fingerprint: str


@dataclass
class OraclePair:
    """A discovered scalar-oracle/batched-kernel pair."""

    pair_id: str
    oracle: Optional[OracleSide]
    kernel: Optional[OracleSide]
    tests: Dict[str, str]  # repo-relative test path -> sha256
    declared: bool = False


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def _strip_docstrings(node: ast.AST) -> None:
    for child in ast.walk(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)
        ):
            body = child.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                body.pop(0)
                if not body:
                    body.append(ast.Pass())


def fingerprint_node(node: ast.AST) -> str:
    """Location-independent, docstring-independent AST hash."""
    clone = copy.deepcopy(node)
    _strip_docstrings(clone)
    dump = ast.dump(clone, annotate_fields=False, include_attributes=False)
    return hashlib.sha256(dump.encode()).hexdigest()


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
def _short(qualname: str) -> str:
    return qualname[len("repro."):] if qualname.startswith("repro.") else qualname


def _marker_lines_for(node: ast.AST) -> List[int]:
    """Source lines where a marker may claim this definition."""
    lines = [node.lineno, node.lineno - 1]
    decorators = getattr(node, "decorator_list", [])
    if decorators:
        first = min(d.lineno for d in decorators)
        lines.append(first - 1)
    return lines


def discover_pairs(graph: ProjectGraph) -> Dict[str, OraclePair]:
    """All declared + convention-discovered pairs in the project."""
    markers: Dict[str, Dict[str, OracleSide]] = {}
    claimed: Dict[str, str] = {}  # qualname -> pair id

    definitions = list(graph.functions.values()) + list(graph.classes.values())
    sides = {
        info.qualname: OracleSide(
            qualname=info.qualname,
            path=info.path,
            line=info.node.lineno,
            fingerprint=fingerprint_node(info.node),
        )
        for info in definitions
    }

    # Pass 1: explicit markers.
    for info in definitions:
        source_lines = graph.source_lines(info.module)
        for lineno in _marker_lines_for(info.node):
            if not (1 <= lineno <= len(source_lines)):
                continue
            match = _MARKER_RE.search(source_lines[lineno - 1])
            if match is None:
                continue
            table = markers.setdefault(match.group("id"), {})
            table[match.group("role")] = sides[info.qualname]
            claimed[info.qualname] = match.group("id")
            break

    pairs: Dict[str, OraclePair] = {}
    for pair_id, table in markers.items():
        pairs[pair_id] = OraclePair(
            pair_id=pair_id,
            oracle=table.get("oracle"),
            kernel=table.get("kernel"),
            tests={},
            declared=True,
        )

    # Pass 2: naming conventions, scoped to one class (or one module for
    # free functions), skipping marker-claimed definitions.
    by_scope: Dict[Tuple[str, Optional[str]], Dict[str, str]] = {}
    for info in graph.functions.values():
        scope = (info.module, info.class_name)
        by_scope.setdefault(scope, {})[info.name] = info.qualname

    for scope, names in by_scope.items():
        for name, qualname in names.items():
            if qualname in claimed:
                continue
            oracle_qual = None
            if name.endswith("_batch") and name[: -len("_batch")] in names:
                oracle_qual = names[name[: -len("_batch")]]
            elif name + "_reference" in names:
                oracle_qual = names[name + "_reference"]
            elif name == "observe_block" and "observe" in names:
                oracle_qual = names["observe"]
            if oracle_qual is None or oracle_qual in claimed:
                continue
            pair_id = _short(qualname)
            pairs[pair_id] = OraclePair(
                pair_id=pair_id,
                oracle=sides[oracle_qual],
                kernel=sides[qualname],
                tests={},
            )

    _attach_tests(graph.root, pairs)
    return pairs


def _attach_tests(root: Path, pairs: Dict[str, OraclePair]) -> None:
    """Hash every tests/ file that names either side of a pair."""
    tests_root = Path(root) / "tests"
    if not tests_root.is_dir():
        return
    test_files = sorted(tests_root.rglob("test_*.py"))
    contents = {
        path.relative_to(root).as_posix(): path.read_text()
        for path in test_files
    }
    digests = {
        name: hashlib.sha256(text.encode()).hexdigest()
        for name, text in contents.items()
    }
    for pair in pairs.values():
        needles = set()
        for side in (pair.oracle, pair.kernel):
            if side is not None:
                needles.add(side.qualname.rsplit(".", 1)[1])
        for name, text in contents.items():
            if any(
                re.search(rf"\b{re.escape(needle)}\b", text)
                for needle in needles
            ):
                pair.tests[name] = digests[name]


# ----------------------------------------------------------------------
# Manifest I/O
# ----------------------------------------------------------------------
def _side_dict(side: Optional[OracleSide]) -> Optional[Dict]:
    if side is None:
        return None
    return {
        "qualname": side.qualname,
        "path": side.path,
        "fingerprint": side.fingerprint,
    }


def compute_oracle_manifest(graph: ProjectGraph) -> Dict:
    pairs = discover_pairs(graph)
    return {
        "pairs": {
            pair_id: {
                "declared": pair.declared,
                "oracle": _side_dict(pair.oracle),
                "kernel": _side_dict(pair.kernel),
                "tests": dict(sorted(pair.tests.items())),
            }
            for pair_id, pair in sorted(pairs.items())
        }
    }


def write_oracle_manifest(
    graph: ProjectGraph, manifest_path: Optional[Path] = None
) -> Path:
    """Bless the current tree's oracle pairs into the manifest."""
    path = Path(manifest_path) if manifest_path else default_oracle_manifest_path()
    manifest = compute_oracle_manifest(graph)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------
def _finding(rule: str, path: str, line: int, message: str) -> Finding:
    return Finding(rule=rule, path=path, line=line, message=message)


def _pair_anchor(pair: OraclePair, recorded: Optional[Dict] = None) -> Tuple[str, int]:
    for side in (pair.oracle, pair.kernel):
        if side is not None:
            return side.path, side.line
    if recorded:
        for key in ("oracle", "kernel"):
            side = recorded.get(key)
            if side:
                return side.get("path", "<oracle-manifest>"), 1
    return "<oracle-manifest>", 1


_REBLESS = (
    "re-bless with `python -m repro check --flow --update-oracles` once "
    "the equivalence suites pass"
)


def check_oracles(
    graph: ProjectGraph, manifest_path: Optional[Path] = None
) -> List[Finding]:
    """Findings for the oracle-pair pillar (empty list == clean)."""
    path = Path(manifest_path) if manifest_path else default_oracle_manifest_path()
    current = discover_pairs(graph)
    findings: List[Finding] = []

    # Structural problems are reported from the live tree regardless of
    # the manifest state.
    for pair in current.values():
        anchor_path, anchor_line = _pair_anchor(pair)
        if pair.oracle is None or pair.kernel is None:
            missing = "oracle" if pair.oracle is None else "kernel"
            findings.append(
                _finding(
                    "ORA001",
                    anchor_path,
                    anchor_line,
                    f"pair {pair.pair_id!r} declares no {missing} side; add "
                    f"a `# repro-oracle: {pair.pair_id} -- {missing}` marker "
                    "to its counterpart",
                )
            )
            continue
        if not pair.tests:
            findings.append(
                _finding(
                    "ORA001",
                    anchor_path,
                    anchor_line,
                    f"pair {pair.pair_id!r} has no equivalence test: no "
                    "file under tests/ references "
                    f"{pair.oracle.qualname.rsplit('.', 1)[1]!r} or "
                    f"{pair.kernel.qualname.rsplit('.', 1)[1]!r}",
                )
            )

    if not path.is_file():
        findings.append(
            _finding(
                "ORA003",
                str(path),
                1,
                f"oracle manifest missing; {_REBLESS}",
            )
        )
        return sort_findings(findings)
    try:
        recorded_pairs: Dict[str, Dict] = json.loads(path.read_text()).get(
            "pairs", {}
        )
    except ValueError:
        findings.append(
            _finding(
                "ORA003",
                str(path),
                1,
                f"oracle manifest is not valid JSON; {_REBLESS}",
            )
        )
        return sort_findings(findings)

    for pair_id, recorded in sorted(recorded_pairs.items()):
        pair = current.get(pair_id)
        if pair is None or pair.oracle is None or pair.kernel is None:
            anchor = recorded.get("oracle") or recorded.get("kernel") or {}
            findings.append(
                _finding(
                    "ORA003",
                    anchor.get("path", str(path)),
                    1,
                    f"recorded pair {pair_id!r} no longer exists in the "
                    f"tree; {_REBLESS}",
                )
            )
            continue
        recorded_oracle = (recorded.get("oracle") or {}).get("fingerprint")
        recorded_kernel = (recorded.get("kernel") or {}).get("fingerprint")
        oracle_changed = pair.oracle.fingerprint != recorded_oracle
        kernel_changed = pair.kernel.fingerprint != recorded_kernel
        tests_changed = pair.tests != recorded.get("tests", {})
        if not (oracle_changed or kernel_changed):
            continue  # test-file churn alone never drifts a pair
        if oracle_changed != kernel_changed and not tests_changed:
            moved = pair.oracle if oracle_changed else pair.kernel
            twin = pair.kernel if oracle_changed else pair.oracle
            side_name = "scalar oracle" if oracle_changed else "batched kernel"
            twin_name = "batched kernel" if oracle_changed else "scalar oracle"
            findings.append(
                _finding(
                    "ORA002",
                    moved.path,
                    moved.line,
                    f"{side_name} {moved.qualname} changed but its "
                    f"{twin_name} {twin.qualname} and the equivalence "
                    f"tests ({', '.join(sorted(pair.tests)) or 'none'}) "
                    "did not; bit-identical replay is no longer "
                    f"evidenced — update the counterpart/tests, then "
                    f"{_REBLESS}",
                )
            )
        else:
            anchor_path, anchor_line = _pair_anchor(pair)
            findings.append(
                _finding(
                    "ORA003",
                    anchor_path,
                    anchor_line,
                    f"pair {pair_id!r} drifted from the manifest; "
                    f"{_REBLESS}",
                )
            )

    for pair_id, pair in sorted(current.items()):
        if pair_id in recorded_pairs or pair.oracle is None or pair.kernel is None:
            continue
        anchor_path, anchor_line = _pair_anchor(pair)
        findings.append(
            _finding(
                "ORA003",
                anchor_path,
                anchor_line,
                f"new oracle pair {pair_id!r} is not in the manifest; "
                f"{_REBLESS}",
            )
        )
    return sort_findings(findings)
