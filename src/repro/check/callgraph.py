"""Project-wide symbol table and call graph for the flow passes.

The three ``repro.check.flow`` analyses (entropy flow, oracle-pair
drift, hot-path allocation lint) all need the same substrate: every
module under ``src/repro`` parsed once, every function and class
indexed by qualified name, imports resolved to project symbols, and a
conservative call graph over them.

Resolution strategy (deliberately over-approximate — this feeds lint
passes, not a compiler):

* ``f(...)`` — the module's own top-level ``f``, else whatever ``f``
  was imported as (``from repro.x import f``).
* ``self.m(...)`` — ``m`` on the lexically enclosing class if defined
  there, otherwise *every* project method named ``m`` (inheritance and
  duck typing resolved class-hierarchy-analysis style, by name).
* ``obj.m(...)`` / ``alias.f(...)`` — a project-module alias resolves
  to that module's ``f``; any other receiver falls back to the by-name
  method set.

Methods named like ubiquitous builtins (``get``, ``items``, ``append``,
...) never enter the by-name table, which keeps the by-name fallback
from wiring the whole project together.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

# Receiver-less method names too generic to resolve by name: they name
# builtin/stdlib protocol methods far more often than project methods.
_GENERIC_METHOD_NAMES = {
    "get", "items", "keys", "values", "append", "extend", "pop", "add",
    "discard", "remove", "clear", "update", "copy", "sort", "split",
    "join", "strip", "read", "write", "close", "sum", "max", "min",
    "mean", "ravel", "reshape", "astype", "tolist", "fill", "setdefault",
}


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # e.g. repro.track.array_state.ArrayMisraGries.observe
    module: str  # e.g. repro.track.array_state
    path: str  # repo-relative posix path
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  # unqualified, None for free functions

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]


@dataclass
class ClassInfo:
    """One class definition with its method table."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str  # dotted, e.g. repro.mem.controller
    path: str  # repo-relative posix path
    source: str
    tree: ast.Module
    # local alias -> fully qualified project name it refers to
    # ("np" -> "numpy" style externals are kept too, values verbatim).
    imports: Dict[str, str] = field(default_factory=dict)


def _module_name(path: Path, src_root: Path) -> str:
    relative = path.relative_to(src_root).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class ProjectGraph:
    """Symbol tables plus a conservative call graph over ``src/repro``."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: Dict[str, Set[str]] = {}
        self._methods_by_name: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, root: Path, packages: Optional[Iterable[str]] = None) -> "ProjectGraph":
        """Parse and index every module under ``<root>/src/repro``.

        ``packages`` restricts the walk to named subpackages (plus the
        top-level modules); the default is the whole project.
        """
        graph = cls(root)
        src_root = Path(root) / "src"
        repro_root = src_root / "repro"
        files: List[Path] = []
        if packages is None:
            files = sorted(repro_root.rglob("*.py"))
        else:
            files = sorted(repro_root.glob("*.py"))
            for package in packages:
                files.extend(sorted((repro_root / package).rglob("*.py")))
        for path in files:
            graph._index_module(path, src_root)
        for module in graph.modules.values():
            graph._link_module(module)
        return graph

    def _index_module(self, path: Path, src_root: Path) -> None:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - tree is parseable
            raise ValueError(f"cannot parse {path}: {exc}") from exc
        name = _module_name(path, src_root)
        display = path.relative_to(self.root).as_posix()
        module = ModuleInfo(name=name, path=display, source=source, tree=tree)
        self.modules[name] = module

        for statement in tree.body:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    module.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(statement, ast.ImportFrom) and statement.module:
                for alias in statement.names:
                    module.imports[alias.asname or alias.name] = (
                        f"{statement.module}.{alias.name}"
                    )
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(statement, module, class_name=None)
            elif isinstance(statement, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{name}.{statement.name}",
                    module=name,
                    path=display,
                    node=statement,
                )
                self.classes[info.qualname] = info
                for item in statement.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._add_function(
                            item, module, class_name=statement.name
                        )
                        info.methods[item.name] = fn.qualname

    def _add_function(
        self, node: ast.AST, module: ModuleInfo, class_name: Optional[str]
    ) -> FunctionInfo:
        stem = f"{module.name}.{class_name}" if class_name else module.name
        info = FunctionInfo(
            qualname=f"{stem}.{node.name}",
            module=module.name,
            path=module.path,
            node=node,
            class_name=class_name,
        )
        self.functions[info.qualname] = info
        if class_name and node.name not in _GENERIC_METHOD_NAMES:
            self._methods_by_name.setdefault(node.name, set()).add(info.qualname)
        return info

    # ------------------------------------------------------------------
    # Call-edge resolution
    # ------------------------------------------------------------------
    def _link_module(self, module: ModuleInfo) -> None:
        for info in self.functions.values():
            if info.module != module.name:
                continue
            callees: Set[str] = set()
            for call in ast.walk(info.node):
                if isinstance(call, ast.Call):
                    callees.update(self._resolve_call(call.func, info, module))
            self.calls[info.qualname] = callees

    def _resolve_call(
        self, func: ast.AST, caller: FunctionInfo, module: ModuleInfo
    ) -> Set[str]:
        if isinstance(func, ast.Name):
            local = f"{module.name}.{func.id}"
            if local in self.functions:
                return {local}
            target = module.imports.get(func.id)
            if target and target in self.functions:
                return {target}
            if target and target in self.classes:
                init = self.classes[target].methods.get("__init__")
                return {init} if init else set()
            return set()
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                if owner.id == "self" and caller.class_name:
                    own_class = f"{module.name}.{caller.class_name}"
                    info = self.classes.get(own_class)
                    if info and func.attr in info.methods:
                        return {info.methods[func.attr]}
                    return set(self._methods_by_name.get(func.attr, ()))
                target = module.imports.get(owner.id)
                if target and target in self.modules:
                    candidate = f"{target}.{func.attr}"
                    if candidate in self.functions:
                        return {candidate}
                    return set()
            return set(self._methods_by_name.get(func.attr, ()))
        return set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_call(
        self, func: ast.AST, caller: FunctionInfo
    ) -> Set[str]:
        """Project qualnames a call expression may dispatch to."""
        return self._resolve_call(func, caller, self.modules[caller.module])

    def functions_named(self, name: str) -> List[FunctionInfo]:
        """Every project function/method with this unqualified name."""
        return [f for f in self.functions.values() if f.name == name]

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of the call graph from root qualnames."""
        seen: Set[str] = set()
        frontier = [q for q in roots if q in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.calls.get(current, ()))
        return seen

    def source_lines(self, module: str) -> Tuple[str, ...]:
        return tuple(self.modules[module].source.splitlines())
