"""AST determinism linter (rules RRS001-RRS010).

The cache in :mod:`repro.exec.cache` replays results keyed only by the
:class:`~repro.exec.runner.SweepPoint`; that is sound *only if* every
simulation is a pure, deterministic function of the point. This pass
statically rejects the ways that invariant rots: raw entropy sources,
wall-clock reads, unordered iteration, implicit float-accumulation
order, mutable default arguments, and missing ``__slots__`` on the
hot-path classes the sweep executor's throughput depends on.

Scope: the simulation packages
``src/repro/{core,dram,mem,mitigations,attacks,track,workloads}``.
``repro.utils.rng`` is the sanctioned entropy funnel and is exempt (it
is outside the linted set by construction). RRS009 (no bare ``print``)
applies to the silent subset ``{mem,dram,core,mitigations,track}`` —
the packages a traced simulation flows through, where stdout output
would corrupt machine-readable sweep results.

See :mod:`repro.check.findings` for the rule table and the suppression
comment syntax.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.findings import Finding, apply_suppressions

# Packages under src/repro whose files are linted by default.
TARGET_PACKAGES: Tuple[str, ...] = (
    "core",
    "dram",
    "mem",
    "mitigations",
    "attacks",
    "track",
    "workloads",
)

# Packages where RRS009 bans bare print(): the simulation data path.
_PRINT_BAN_RE = re.compile(r"(^|/)repro/(mem|dram|core|mitigations|track)/")

# Hot-path classes that must carry __slots__ (RRS007), keyed by the
# path suffix of the module that defines them.
HOT_PATH_CLASSES: Dict[str, str] = {
    "MemoryRequest": "mem/request.py",
    "Core": "mem/cpu.py",
    "CoreConfig": "mem/cpu.py",
    "Bank": "dram/bank.py",
    "BankTimingState": "dram/timing.py",
    "AccessOutcome": "dram/timing.py",
}

# numpy.random BitGenerator constructors (RRS010 seed policing).
_BITGEN_NAMES = {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}

_MUTABLE_FACTORY_NAMES = {
    "list",
    "dict",
    "set",
    "Counter",
    "OrderedDict",
    "defaultdict",
    "deque",
}

class _FileVisitor(ast.NodeVisitor):
    """Collects raw (unsuppressed) findings for one module."""

    def __init__(self, path: str, lines: Sequence[str]) -> None:
        self.path = path
        self.lines = lines
        self.findings: List[Finding] = []
        self._numpy_aliases: Set[str] = set()
        self._ban_print = bool(
            _PRINT_BAN_RE.search(path.replace("\\", "/"))
        )

    # ------------------------------------------------------------------
    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=line,
                message=message,
                snippet=snippet,
            )
        )

    # ------------------------------------------------------------------
    # Imports (RRS001/RRS002/RRS003)
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.name
            if name == "random" or name.startswith("numpy.random"):
                self._add(
                    "RRS001",
                    node,
                    f"import of {name!r}; draw from "
                    "repro.utils.rng.DeterministicRng instead",
                )
            elif name in ("numpy",):
                self._numpy_aliases.add(alias.asname or name)
            elif name == "time":
                self._add(
                    "RRS002",
                    node,
                    "import of 'time'; simulated time comes from the "
                    "simulator clock, not the host",
                )
            elif name == "secrets":
                self._add("RRS003", node, "import of 'secrets' (host entropy)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "random" or module.startswith("numpy.random"):
            self._add(
                "RRS001",
                node,
                f"import from {module!r}; draw from "
                "repro.utils.rng.DeterministicRng instead",
            )
        elif module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._add(
                        "RRS001",
                        node,
                        "import of numpy.random; draw from "
                        "repro.utils.rng.DeterministicRng instead",
                    )
        elif module == "time":
            self._add(
                "RRS002",
                node,
                "import from 'time'; simulated time comes from the "
                "simulator clock, not the host",
            )
        elif module == "secrets":
            self._add("RRS003", node, "import from 'secrets' (host entropy)")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Calls and attribute uses (RRS001/RRS002/RRS003/RRS005)
    # ------------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self._numpy_aliases
        ):
            self._add(
                "RRS001",
                node,
                "use of numpy.random; derive a DeterministicRng child "
                "stream instead",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Unseeded generators (RRS010)
    # ------------------------------------------------------------------
    @staticmethod
    def _is_default_rng(func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id == "default_rng"
        return isinstance(func, ast.Attribute) and func.attr == "default_rng"

    @staticmethod
    def _is_generator_ctor(func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id == "Generator"
        return isinstance(func, ast.Attribute) and func.attr == "Generator"

    @staticmethod
    def _is_unseeded_bitgen(node: ast.AST) -> bool:
        """True for ``PCG64()`` / ``MT19937(None)`` / friends."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name not in _BITGEN_NAMES:
            return False
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for keyword in node.keywords:
            if keyword.arg == "seed":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                )
        return True

    @staticmethod
    def _seed_argument_missing(node: ast.Call) -> bool:
        """True when default_rng() gets no seed (or an explicit None)."""
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for keyword in node.keywords:
            if keyword.arg == "seed":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                )
        return True

    def _check_unseeded_generator(self, node: ast.Call) -> None:
        func = node.func
        if self._is_generator_ctor(func) and node.args:
            # Direct Generator(PCG64()) construction bypasses the
            # default_rng() syntax entirely — same OS-entropy hazard.
            if self._is_unseeded_bitgen(node.args[0]):
                self._add(
                    "RRS010",
                    node,
                    "Generator() over an unseeded bit generator draws OS "
                    "entropy; derive a seeded stream from "
                    "repro.utils.rng.DeterministicRng",
                )
            return
        if self._is_default_rng(func):
            # Seeded default_rng via np.random is RRS001's business
            # (raw numpy.random use); RRS010 only polices the seed.
            if self._seed_argument_missing(node):
                self._add(
                    "RRS010",
                    node,
                    "unseeded default_rng() draws OS entropy; derive a "
                    "seeded stream from repro.utils.rng.DeterministicRng",
                )
            return
        # Legacy module-level API: np.random.randint(...) and friends
        # share one hidden global BitGenerator across the process.
        # Class constructors (Generator, PCG64, SeedSequence, ...) are
        # not draws from that generator; their seeding is policed above.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self._numpy_aliases
            and func.attr not in _BITGEN_NAMES
            and func.attr not in ("Generator", "SeedSequence", "BitGenerator")
        ):
            self._add(
                "RRS010",
                node,
                f"module-level np.random.{func.attr}() uses the hidden "
                "process-global generator; thread a seeded Generator "
                "from repro.utils.rng.DeterministicRng instead",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        self._check_unseeded_generator(node)
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                if owner.id == "os" and func.attr == "urandom":
                    self._add("RRS003", node, "os.urandom() is host entropy")
                elif owner.id == "uuid" and func.attr in ("uuid1", "uuid4"):
                    self._add(
                        "RRS003", node, f"uuid.{func.attr}() is host entropy"
                    )
                elif owner.id in ("datetime", "date") and func.attr in (
                    "now",
                    "utcnow",
                    "today",
                ):
                    self._add(
                        "RRS002",
                        node,
                        f"{owner.id}.{func.attr}() reads the wall clock",
                    )
        if (
            self._ban_print
            and isinstance(func, ast.Name)
            and func.id == "print"
        ):
            self._add(
                "RRS009",
                node,
                "bare print() in a simulation package; surface data "
                "through SimMetrics or a repro.obs trace event instead",
            )
        if (
            isinstance(func, ast.Name)
            and func.id == "sum"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Attribute)
            and node.args[0].func.attr in ("values", "items")
        ):
            self._add(
                "RRS005",
                node,
                f"sum() over .{node.args[0].func.attr}() accumulates in "
                "mapping insertion order; sort the keys (or use "
                "math.fsum) to pin the order",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Iteration order (RRS004)
    # ------------------------------------------------------------------
    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self._add(
                "RRS004",
                iter_node,
                "iterating a set; per-process hash salting makes the "
                "order nondeterministic — wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # ------------------------------------------------------------------
    # Function defaults (RRS006)
    # ------------------------------------------------------------------
    @staticmethod
    def _is_mutable_default(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORY_NAMES
        )

    def _visit_function(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable_default(default):
                self._add(
                    "RRS006",
                    default,
                    f"mutable default argument in {node.name}(); use "
                    "None and construct inside the body",
                )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------
    # Hot-path __slots__ (RRS007)
    # ------------------------------------------------------------------
    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for statement in node.body:
            targets = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        expected_module = HOT_PATH_CLASSES.get(node.name)
        normalized = self.path.replace("\\", "/")
        if expected_module is not None and normalized.endswith(expected_module):
            if not self._declares_slots(node):
                self._add(
                    "RRS007",
                    node,
                    f"hot-path class {node.name} must declare __slots__ "
                    "(or dataclass(slots=True))",
                )
        self.generic_visit(node)


class DeterminismLinter:
    """Runs the rule set over files, honouring suppression comments."""

    def lint_source(self, source: str, path: str) -> List[Finding]:
        """Findings for one module's source text."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise ValueError(f"cannot lint {path}: {exc}") from exc
        visitor = _FileVisitor(path, source.splitlines())
        visitor.visit(tree)
        return apply_suppressions(visitor.findings, source, path)

    def lint_file(self, path: Path, display_path: str = "") -> List[Finding]:
        """Findings for one file on disk."""
        source = Path(path).read_text()
        return self.lint_source(source, display_path or str(path))


def lint_paths(paths: Iterable[Path], root: Optional[Path] = None) -> List[Finding]:
    """Lint explicit files; paths are reported relative to ``root``."""
    linter = DeterminismLinter()
    findings: List[Finding] = []
    for path in paths:
        path = Path(path)
        display = str(path)
        if root is not None:
            try:
                display = str(path.resolve().relative_to(Path(root).resolve()))
            except ValueError:
                display = str(path)
        findings.extend(linter.lint_file(path, display_path=display))
    return findings


def lint_tree(root: Path) -> List[Finding]:
    """Lint every module of the simulation packages under ``root``."""
    root = Path(root)
    files: List[Path] = []
    for package in TARGET_PACKAGES:
        package_dir = root / "src" / "repro" / package
        if package_dir.is_dir():
            files.extend(sorted(package_dir.rglob("*.py")))
    return lint_paths(files, root=root)
