"""Snapshot-coverage lint: mutable sim state must be ``Snapshotable``.

The checkpoint/restore subsystem (:mod:`repro.state`) only produces
bit-identical resumes when *every* object whose state evolves during a
run participates in the ``snapshot_state()`` / ``restore_state()``
protocol. A class that accumulates state across requests but is absent
from the checkpoint payload silently diverges after a resume — the
worst kind of bug, because nothing crashes.

This pass closes the loop statically. Over the simulation packages
(``core``, ``dram``, ``mem``, ``track``, ``mitigations``,
``workloads``, ``state``, ``utils``) it flags:

* **STA001** — a class that mutates instance state outside its
  constructor (``self.x = ...`` / ``self.x += ...`` in any method other
  than ``__init__``/``__post_init__``/``__new__``) but implements
  neither protocol method, directly or via a project base class. Either
  the class holds run-evolving state and must join the protocol, or it
  is legitimately out of scope and the ``class`` line carries a
  justified suppression::

      class Tracer:  # repro-check: STA001 -- observational; never restored

* **STA002** — a class implementing exactly one of the pair; a
  one-sided protocol can snapshot state it can never restore (or vice
  versa), which defeats the round-trip oracle.

Detection is deliberately syntactic and conservative: only direct
``self.<attr>`` assignment/augmented-assignment counts as evidence of
mutable state. Mutating *calls* (``self.items.append(...)``) on
never-reassigned attributes are invisible to this pass — classes built
that way should still join the protocol, but enforcing it here would
drown the signal in false positives from read-only helpers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.check.callgraph import ClassInfo, ProjectGraph
from repro.check.findings import Finding, apply_suppressions, sort_findings

# Subpackages of src/repro whose classes hold simulated state. Packages
# that only *observe* runs (obs), orchestrate them (exec, analysis,
# attacks, software), or check them (check) are out of scope: their
# state is never part of a checkpoint payload.
SIM_STATE_PACKAGES = (
    "core",
    "dram",
    "mem",
    "track",
    "mitigations",
    "workloads",
    "state",
    "utils",
)

# Constructor-shaped methods: assignments here establish state rather
# than evolve it.
_CTOR_METHODS = {"__init__", "__post_init__", "__new__"}

_SNAPSHOT = "snapshot_state"
_RESTORE = "restore_state"


def _module_in_scope(module: str) -> bool:
    parts = module.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] in SIM_STATE_PACKAGES


def _is_self_attribute(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _self_mutations(method: ast.AST) -> Optional[int]:
    """First line mutating ``self.<attr>`` in a method body, or None.

    Nested functions and lambdas are walked too — a closure mutating
    ``self`` is still run-evolving state.
    """
    first: Optional[int] = None
    for node in ast.walk(method):
        targets: Iterable[ast.AST] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = (node.target,)
        for target in targets:
            # Tuple unpacking: (self.a, self.b) = ... counts per element.
            elements = (
                target.elts if isinstance(target, (ast.Tuple, ast.List)) else (target,)
            )
            for element in elements:
                if _is_self_attribute(element):
                    if first is None or node.lineno < first:
                        first = node.lineno
    return first


def _project_bases(graph: ProjectGraph, info: ClassInfo) -> List[str]:
    """Qualnames of ``info``'s base classes resolvable inside the project."""
    module = graph.modules[info.module]
    bases: List[str] = []
    for base in info.node.bases:
        if isinstance(base, ast.Name):
            local = f"{info.module}.{base.id}"
            if local in graph.classes:
                bases.append(local)
                continue
            target = module.imports.get(base.id)
            if target and target in graph.classes:
                bases.append(target)
        elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            target = module.imports.get(base.value.id)
            if target:
                candidate = f"{target}.{base.attr}"
                if candidate in graph.classes:
                    bases.append(candidate)
    return bases


def _defines(
    graph: ProjectGraph,
    qualname: str,
    method: str,
    seen: Optional[Set[str]] = None,
) -> bool:
    """Does the class (or a project ancestor) define ``method``?"""
    if seen is None:
        seen = set()
    if qualname in seen:
        return False
    seen.add(qualname)
    info = graph.classes.get(qualname)
    if info is None:
        return False
    if method in info.methods:
        return True
    return any(
        _defines(graph, base, method, seen)
        for base in _project_bases(graph, info)
    )


def _evidence(info: ClassInfo) -> Optional[Tuple[str, int]]:
    """``(method name, line)`` of the first post-constructor mutation."""
    best: Optional[Tuple[str, int]] = None
    for item in info.node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name in _CTOR_METHODS or item.name in (_SNAPSHOT, _RESTORE):
            continue
        line = _self_mutations(item)
        if line is not None and (best is None or line < best[1]):
            best = (item.name, line)
    return best


def check_statecheck(graph: ProjectGraph) -> List[Finding]:
    """Run the snapshot-coverage pass over the simulation packages."""
    by_path: Dict[str, List[Finding]] = {}
    for qualname, info in sorted(graph.classes.items()):
        if not _module_in_scope(info.module):
            continue
        has_snapshot = _defines(graph, qualname, _SNAPSHOT)
        has_restore = _defines(graph, qualname, _RESTORE)
        if has_snapshot and has_restore:
            continue
        class_name = qualname.rsplit(".", 1)[1]
        if has_snapshot or has_restore:
            present = _SNAPSHOT if has_snapshot else _RESTORE
            missing = _RESTORE if has_snapshot else _SNAPSHOT
            by_path.setdefault(info.path, []).append(
                Finding(
                    rule="STA002",
                    path=info.path,
                    line=info.node.lineno,
                    message=(
                        f"{class_name} implements {present} but not "
                        f"{missing}; a one-sided protocol breaks the "
                        "checkpoint round-trip oracle"
                    ),
                    snippet=f"class {class_name}",
                )
            )
            continue
        evidence = _evidence(info)
        if evidence is None:
            continue
        method, line = evidence
        by_path.setdefault(info.path, []).append(
            Finding(
                rule="STA001",
                path=info.path,
                line=info.node.lineno,
                message=(
                    f"{class_name} mutates instance state outside its "
                    f"constructor ({method}, line {line}) but is not "
                    "Snapshotable; checkpoint resumes silently skip this "
                    "state — implement snapshot_state/restore_state or "
                    "suppress with a justification"
                ),
                snippet=f"class {class_name}",
            )
        )

    findings: List[Finding] = []
    for path, found in sorted(by_path.items()):
        module = next(
            (m for m in graph.modules.values() if m.path == path), None
        )
        source = module.source if module is not None else ""
        findings.extend(apply_suppressions(found, source, path))
    return sort_findings(findings)
