"""The ``Snapshotable`` state protocol.

Every class that holds mutable simulation state implements two methods:

* ``snapshot_state() -> tuple`` — a pure-data picture of the object's
  mutable state: nothing but tuples, lists, dicts, scalars, and numpy
  arrays. No live objects, no pickling — sets, deques and Counters are
  converted to ordered plain data by the owning class, because *it*
  knows which iteration orders are semantically load-bearing (the RIT's
  eviction order, a Counter's ``most_common`` tie-break).
* ``restore_state(state)`` — the exact inverse, applied to an object
  freshly constructed from the same configuration. Restore overwrites
  every mutable field; construction supplies everything derivable from
  config (seeds, tables, capacity), which is what makes the scheme
  deterministic without serializing closures or object graphs.

Aliased structures (the RRS route views that share the RIT ``forward``
dicts, PARA's cross-channel credit cell) must be restored *in place* —
mutate the shared object, never rebind it — so every alias observes the
restored state.

``STATE_SCHEMA_VERSION`` stamps every serialized checkpoint; loading a
payload from a different schema fails loudly instead of misreading it.
"""

from __future__ import annotations

from typing import Any, Protocol, Tuple, runtime_checkable

STATE_SCHEMA_VERSION = 1


class NotSnapshotable(RuntimeError):
    """Raised when live state cannot be captured as a checkpoint.

    Examples: a ``Core`` driving a raw record iterator instead of a
    snapshotable block source, or a controller with writes still
    buffered in an ablation-only write queue.
    """


@runtime_checkable
class Snapshotable(Protocol):
    """Structural protocol for checkpointable simulation state."""

    def snapshot_state(self) -> Tuple[Any, ...]:
        """Pure-data picture of this object's mutable state."""
        ...

    def restore_state(self, state: Tuple[Any, ...]) -> None:
        """Inverse of :meth:`snapshot_state` on a fresh-built object."""
        ...


def is_snapshotable(obj: Any) -> bool:
    """True when ``obj`` implements both protocol methods."""
    return isinstance(obj, Snapshotable)
