"""Bit-exact JSON codec for snapshot payloads.

Snapshot payloads are pure data (protocol contract), but JSON alone
cannot carry them faithfully: tuples collapse to lists, dict keys
collapse to strings, ``±inf`` is not valid strict JSON, and float64
arrays must survive without a decimal round trip. Each lossy shape gets
a sentinel object:

* tuple               -> ``{"__t__": [...]}``
* dict                -> ``{"__d__": [[key, value], ...]}`` — *every*
  dict, so non-string keys and insertion order (which drives RIT
  eviction and ``Counter.most_common`` tie-breaks) survive exactly.
* numpy array         -> ``{"__nd__": dtype, "shape": [...], "b64":
  base64(tobytes)}`` — byte-exact, no text round trip.
* non-finite float    -> ``{"__f__": "inf" | "-inf" | "nan"}``

Finite floats ride as native JSON numbers: Python serializes them with
``repr``, the shortest string that round-trips to the same IEEE double.
Sets and deques are rejected — the owning class must convert them to
ordered plain data in ``snapshot_state`` (see
:mod:`repro.state.protocol`).
"""

from __future__ import annotations

import base64
import math
from typing import Any

import numpy as np


def encode_state(value: Any) -> Any:
    """Encode one snapshot payload into strict-JSON-safe data."""
    if value is None or isinstance(value, (bool, int, str)):
        if isinstance(value, (np.integer, np.bool_)):
            return value.item()
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {"__f__": "nan"}
        return {"__f__": "inf" if value > 0 else "-inf"}
    if isinstance(value, (np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.floating):
        return encode_state(float(value))
    if isinstance(value, tuple):
        return {"__t__": [encode_state(item) for item in value]}
    if isinstance(value, list):
        return [encode_state(item) for item in value]
    if type(value) is dict:
        # Strict type check: dict *subclasses* (Counter, defaultdict,
        # OrderedDict) would silently decay to plain dicts on decode —
        # the owning class must convert them to ordered plain data.
        return {
            "__d__": [
                [encode_state(k), encode_state(v)] for k, v in value.items()
            ]
        }
    if isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        return {
            "__nd__": contiguous.dtype.str,
            "shape": list(contiguous.shape),
            "b64": base64.b64encode(contiguous.tobytes()).decode("ascii"),
        }
    raise TypeError(
        f"snapshot payloads must be pure data; {type(value).__name__} "
        "must be converted by the owning class's snapshot_state()"
    )


def decode_state(value: Any) -> Any:
    """Exact inverse of :func:`encode_state`."""
    if isinstance(value, list):
        return [decode_state(item) for item in value]
    if isinstance(value, dict):
        if "__t__" in value:
            return tuple(decode_state(item) for item in value["__t__"])
        if "__d__" in value:
            return {
                decode_state(k): decode_state(v) for k, v in value["__d__"]
            }
        if "__nd__" in value:
            raw = base64.b64decode(value["b64"])
            array = np.frombuffer(raw, dtype=np.dtype(value["__nd__"]))
            return array.reshape(value["shape"]).copy()
        if "__f__" in value:
            return {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}[
                value["__f__"]
            ]
        raise ValueError(f"unknown state sentinel in {sorted(value)!r}")
    return value
