"""Checkpoint container, on-disk store, and run session.

:class:`SimCheckpoint` is one cut of a run: the schema version, a
config *fingerprint* (the SHA-256 canonical key of everything that
shapes the simulation — workload, system config, mitigation recipe,
seed, and the behaviour-relevant env toggles), the number of requests
serviced at the cut, and the pure-data payload assembled by
:meth:`SystemSimulator.checkpoint`.

:class:`CheckpointStore` persists checkpoints with the result cache's
conventions: rooted under the cache dir (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``), sharded by fingerprint prefix, written atomically
(temp file + ``os.replace``), corrupt entries treated as misses. One
fingerprint directory holds every persisted cut of that configuration,
which is what lets a longer sweep point *fork* from a shorter sibling's
warm-start checkpoint: the fingerprint deliberately excludes the
record count, because synthetic trace generators are seeded
independently of length — any two points that differ only in records
share a bit-identical prefix.

:class:`CheckpointSession` is the handle a caller threads into
:meth:`SystemSimulator.run`: where to resume from, which serviced
counts to cut at, and where saved checkpoints go.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.exec.cache import CACHE_SALT, canonical_key, default_cache_dir
from repro.state.protocol import STATE_SCHEMA_VERSION
from repro.state.serial import decode_state, encode_state

_ENV_ENABLE = "REPRO_CHECKPOINT"


def checkpoint_enabled_by_env() -> bool:
    """True when ``REPRO_CHECKPOINT=1`` opts sweeps into checkpointing."""
    return os.environ.get(_ENV_ENABLE, "") == "1"


def default_checkpoint_dir() -> Path:
    """Checkpoint root: ``<cache-dir>/checkpoints``."""
    return default_cache_dir() / "checkpoints"


def run_fingerprint(description: Dict[str, Any]) -> str:
    """Canonical fingerprint of a run configuration.

    ``description`` must be JSON-representable and must cover every
    input that shapes simulated state — restoring a checkpoint under a
    mismatched fingerprint is refused.
    """
    return canonical_key(description, CACHE_SALT)


@dataclass
class SimCheckpoint:
    """One serialized cut of a simulation run."""

    fingerprint: str
    serviced: int
    payload: Any
    meta: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = STATE_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON form (payload via :func:`encode_state`)."""
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "serviced": self.serviced,
            "meta": self.meta,
            "payload": encode_state(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimCheckpoint":
        """Inverse of :meth:`to_dict`; rejects foreign schemas loudly."""
        version = data.get("schema_version")
        if version != STATE_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema {version!r} != "
                f"supported {STATE_SCHEMA_VERSION}"
            )
        return cls(
            fingerprint=data["fingerprint"],
            serviced=int(data["serviced"]),
            payload=decode_state(data["payload"]),
            meta=dict(data.get("meta", {})),
            schema_version=int(version),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def loads(cls, text: str) -> "SimCheckpoint":
        return cls.from_dict(json.loads(text))


class CheckpointStore:
    """Sharded, atomically-written checkpoint files.

    Layout: ``<root>/<fp[:2]>/<fingerprint>/<serviced>.json`` — one
    directory per configuration fingerprint, one file per cut.
    """

    def __init__(
        self, root: Optional[Path] = None, enabled: bool = True
    ) -> None:
        self.root = Path(root) if root is not None else default_checkpoint_dir()
        self.enabled = enabled

    def _dir(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / fingerprint

    def _path(self, fingerprint: str, serviced: int) -> Path:
        return self._dir(fingerprint) / f"{serviced}.json"

    def put(self, checkpoint: SimCheckpoint) -> None:
        """Persist one cut atomically (temp file + ``os.replace``)."""
        if not self.enabled:
            return
        path = self._path(checkpoint.fingerprint, checkpoint.serviced)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-ckpt-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(checkpoint.dumps())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def get(
        self, fingerprint: str, serviced: int
    ) -> Optional[SimCheckpoint]:
        """Load one cut; corrupt or missing files are misses."""
        if not self.enabled:
            return None
        path = self._path(fingerprint, serviced)
        try:
            checkpoint = SimCheckpoint.loads(path.read_text())
        except (OSError, ValueError, KeyError):
            return None
        if (
            checkpoint.fingerprint != fingerprint
            or checkpoint.serviced != serviced
        ):
            return None
        return checkpoint

    def cuts(self, fingerprint: str) -> List[int]:
        """Persisted cut points for a fingerprint, ascending."""
        if not self.enabled:
            return []
        directory = self._dir(fingerprint)
        found: List[int] = []
        try:
            names = os.listdir(directory)
        except OSError:
            return found
        for name in sorted(names):
            stem, _, suffix = name.partition(".")
            if suffix == "json" and stem.isdigit():
                found.append(int(stem))
        found.sort()
        return found

    def latest(
        self,
        fingerprint: str,
        max_serviced: Optional[int] = None,
        accept: Optional[Callable[[SimCheckpoint], bool]] = None,
    ) -> Optional[SimCheckpoint]:
        """The deepest persisted cut, optionally capped at a total.

        The cap is what makes warm-start forking safe: a point may only
        resume from a cut no deeper than its own full run. ``accept``
        adds a caller predicate per loaded checkpoint (e.g. the
        runner's no-exhausted-core rule for cross-length forks).
        """
        for serviced in reversed(self.cuts(fingerprint)):
            if max_serviced is not None and serviced > max_serviced:
                continue
            checkpoint = self.get(fingerprint, serviced)
            if checkpoint is None:
                continue
            if accept is not None and not accept(checkpoint):
                continue
            return checkpoint
        return None


class CheckpointSession:
    """Cut/persist/resume plan for one :meth:`SystemSimulator.run`.

    ``every`` cuts at each positive multiple of that serviced count;
    ``cuts`` adds explicit serviced counts (0 = before the first
    request, the run's total = after the last one). ``sink`` receives
    each :class:`SimCheckpoint` as it is taken; ``resume`` is a
    checkpoint to restore before the first request. The session records
    what happened (``saved``, ``resumed_from``) for ledger rows and
    tests.
    """

    def __init__(
        self,
        fingerprint: str = "",
        every: int = 0,
        cuts: tuple = (),
        sink: Optional[Callable[[SimCheckpoint], None]] = None,
        resume: Optional[SimCheckpoint] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if every < 0:
            raise ValueError("checkpoint interval must be >= 0")
        self.fingerprint = fingerprint
        self.every = every
        self.cuts = frozenset(int(cut) for cut in cuts)
        self.sink = sink
        self.resume = resume
        self.meta = dict(meta or {})
        self.saved: List[int] = []
        self.resumed_from = resume.serviced if resume is not None else 0
        if resume is not None and fingerprint and (
            resume.fingerprint != fingerprint
        ):
            raise ValueError(
                "resume checkpoint fingerprint does not match this run's "
                f"configuration ({resume.fingerprint[:12]}... != "
                f"{fingerprint[:12]}...)"
            )

    def wants(self, serviced: int) -> bool:
        """Should the run cut after ``serviced`` requests?"""
        if serviced in self.cuts:
            return True
        return bool(self.every) and serviced > 0 and serviced % self.every == 0

    def save(self, serviced: int, payload: Any) -> SimCheckpoint:
        """Wrap a payload as a checkpoint and hand it to the sink."""
        checkpoint = SimCheckpoint(
            fingerprint=self.fingerprint,
            serviced=serviced,
            payload=payload,
            meta=dict(self.meta),
        )
        self.saved.append(serviced)
        if self.sink is not None:
            self.sink(checkpoint)
        return checkpoint
