"""repro.state: versioned, deterministic checkpoint/restore.

The subsystem has three layers:

* :mod:`repro.state.protocol` — the :class:`Snapshotable` protocol every
  stateful simulation class implements (``snapshot_state() -> tuple`` /
  ``restore_state(state)``), plus the payload schema version.
* :mod:`repro.state.serial` — the pure-data codec that turns snapshot
  payloads (tuples, dicts, numpy arrays, ±inf) into strict JSON and
  back, bit-exactly.
* :mod:`repro.state.checkpoint` — the :class:`SimCheckpoint` container,
  the content-addressed on-disk :class:`CheckpointStore`, and the
  :class:`CheckpointSession` handed to
  :meth:`~repro.mem.system.SystemSimulator.run` to cut, persist, and
  resume runs.
"""

from repro.state.checkpoint import (
    CheckpointSession,
    CheckpointStore,
    SimCheckpoint,
    checkpoint_enabled_by_env,
    default_checkpoint_dir,
)
from repro.state.protocol import (
    STATE_SCHEMA_VERSION,
    NotSnapshotable,
    Snapshotable,
    is_snapshotable,
)
from repro.state.serial import decode_state, encode_state

__all__ = [
    "STATE_SCHEMA_VERSION",
    "CheckpointSession",
    "CheckpointStore",
    "NotSnapshotable",
    "SimCheckpoint",
    "Snapshotable",
    "checkpoint_enabled_by_env",
    "decode_state",
    "default_checkpoint_dir",
    "encode_state",
    "is_snapshotable",
]
