"""Hardware-style pseudo-random number generation for RRS.

The paper generates swap destinations with a low-latency 64-bit PRINCE
cipher run in CTR mode over a cycle counter (Section 4.4). We model the
same construction — a keyed 64-bit block permutation applied to an
incrementing counter — with a SplitMix64-style mix network standing in
for the PRINCE rounds. The properties RRS actually relies on are
preserved: deterministic keyed permutation, uniform outputs, and
independence between differently-keyed instances. (SplitMix64 is not
cryptographically secure; a deployment would drop in PRINCE with the
same interface.)
"""

from __future__ import annotations

from repro.utils.hashing import keyed_hash, splitmix64

_MASK64 = (1 << 64) - 1

__all__ = ["PrinceStylePRNG", "keyed_hash", "splitmix64"]


class PrinceStylePRNG:
    """CTR-mode keyed permutation, mirroring the paper's PRNG.

    Each call encrypts the next counter value; the 64-bit output is
    reduced to the requested range by rejection sampling (no modulo
    bias — destination rows must be uniform for the security analysis
    of Section 5 to hold).
    """

    def __init__(self, key: int = 0) -> None:
        self.key = key & _MASK64
        self.counter = 0

    def next_u64(self) -> int:
        """Next 64-bit pseudo-random block."""
        block = keyed_hash(self.counter, self.key)
        self.counter += 1
        return block

    # ------------------------------------------------------------------
    # Snapshotable (repro.state): CTR mode means the stream position is
    # exactly the counter; the key is construction-time config.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (self.counter,)

    def restore_state(self, state: tuple) -> None:
        (self.counter,) = state

    def below(self, bound: int) -> int:
        """Uniform integer in [0, bound) via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        # Largest multiple of bound that fits in 64 bits.
        limit = (_MASK64 + 1) - ((_MASK64 + 1) % bound)
        while True:
            draw = self.next_u64()
            if draw < limit:
                return draw % bound

    def pick_row(self, rows: int, is_excluded) -> int:
        """Pick a uniform row index, re-drawing while excluded.

        Mirrors Section 4.4: rows present in the HRT or RIT are not
        valid swap destinations; with >98% of rows eligible the chance
        of needing more than one re-draw is under 1%.
        """
        attempts = 0
        while True:
            candidate = self.below(rows)
            if not is_excluded(candidate):
                return candidate
            attempts += 1
            if attempts > 10_000:
                raise RuntimeError(
                    "could not find an eligible swap destination; "
                    "exclusion set covers nearly the whole bank"
                )
