"""RRS configuration and parameter derivation.

The paper fixes the design around a Row Hammer threshold of 4.8K:
security analysis (Section 5) picks the swap threshold T_RRS = T_RH/6 =
800; Invariant 1 sizes the tracker at ACT_max/T_RRS = 1700 entries; and
re-swaps consuming two tuples size the RIT at 2x1700 = 3400 tuples
(Section 4.5). ``RRSConfig.for_threshold`` reproduces that derivation
for any T_RH, which is how the Figure 10 sensitivity sweep adapts the
design per threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig

# Security analysis outcome (paper Table 4): k = T_RH / T_RRS = 6 gives
# an expected 3.8 years of continuous attack per success.
DEFAULT_K = 6

# RIT lookup adds 4 CPU cycles to every memory access (Section 4.7).
RIT_LOOKUP_CPU_CYCLES = 4
CPU_CLOCK_GHZ = 3.2


@dataclass(frozen=True)
class RRSConfig:
    """All RRS design parameters for one deployment."""

    t_rh: int = 4800
    t_rrs: int = 800
    window_activations: int = 1_360_000  # ACT_max per bank per window
    rows_per_bank: int = 128 * 1024
    tracker_entries: int = 1700
    rit_capacity_tuples: int = 3400
    rit_lookup_ns: float = RIT_LOOKUP_CPU_CYCLES / CPU_CLOCK_GHZ
    exclude_tracked_destinations: bool = True
    tracker_backend: str = "reference"  # "reference" | "cat"
    seed: int = 0
    # >1 when running a 1/time_scale-length epoch: the swap engine's
    # channel-block latency is divided by this so the *fraction* of
    # time spent swapping matches the full-scale system (DESIGN.md §5).
    time_scale: int = 1

    def __post_init__(self) -> None:
        if self.t_rrs <= 0 or self.t_rh <= 0:
            raise ValueError("thresholds must be positive")
        if self.t_rrs >= self.t_rh:
            raise ValueError("T_RRS must be below T_RH for any security")
        if self.tracker_backend not in ("reference", "cat"):
            raise ValueError("tracker_backend must be 'reference' or 'cat'")

    @property
    def k(self) -> int:
        """Swaps needed on one physical row to reach T_RH (T_RH/T_RRS)."""
        return self.t_rh // self.t_rrs

    @property
    def max_swaps_per_window(self) -> int:
        """Upper bound on swap triggers per bank per window (1700)."""
        return self.window_activations // self.t_rrs

    @property
    def rit_capacity_entries(self) -> int:
        """Directional RIT entries (2 per tuple)."""
        return 2 * self.rit_capacity_tuples

    @classmethod
    def for_threshold(
        cls,
        t_rh: int,
        dram: DRAMConfig = DRAMConfig(),
        k: int = DEFAULT_K,
        **overrides,
    ) -> "RRSConfig":
        """Derive a secure configuration for a given Row Hammer threshold.

        T_RRS = T_RH/k, tracker sized by Invariant 1, RIT sized for the
        re-swap worst case — the adaptation rule behind Figure 10.
        """
        if k < 2:
            raise ValueError("k must be at least 2")
        t_rrs = max(1, t_rh // k)
        window_acts = dram.acts_per_refresh_window
        tracker_entries = max(1, window_acts // t_rrs)
        return cls(
            t_rh=t_rh,
            t_rrs=t_rrs,
            window_activations=window_acts,
            rows_per_bank=dram.rows_per_bank,
            tracker_entries=tracker_entries,
            rit_capacity_tuples=2 * tracker_entries,
            **overrides,
        )

    def scaled(self, factor: int) -> "RRSConfig":
        """Scale thresholds/sizes down for a 1/factor-length epoch.

        Keeps T_RH/T_RRS and tracker/RIT proportionality so swap rates
        per unit time are preserved (DESIGN.md §5).
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        t_rrs = max(2, self.t_rrs // factor)
        window = max(t_rrs, self.window_activations // factor)
        tracker = max(1, window // t_rrs)
        return RRSConfig(
            t_rh=max(t_rrs + 1, self.t_rh // factor),
            t_rrs=t_rrs,
            window_activations=window,
            rows_per_bank=self.rows_per_bank,
            tracker_entries=tracker,
            rit_capacity_tuples=2 * tracker,
            rit_lookup_ns=self.rit_lookup_ns,
            exclude_tracked_destinations=self.exclude_tracked_destinations,
            tracker_backend=self.tracker_backend,
            seed=self.seed,
            time_scale=self.time_scale * factor,
        )
