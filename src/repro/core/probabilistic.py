"""Probabilistic RRS — the paper's footnote-1 design point.

Instead of tracking activation counts, swap the activated row with
probability ``p`` on every ACT (PARA's trigger applied to RRS's
mitigating action). Stateless and tiny — but the paper dismisses it for
low thresholds because matching the tracker's per-row guarantee
("swapped within T_RRS activations with high confidence") requires
``p`` large enough that the *expected* swap rate explodes:

* tracker-based RRS swaps at most once per T_RRS activations of a hot
  row — benign workloads swap ~68 times per 64 ms;
* probabilistic RRS with failure probability ``f`` per T_RRS-activation
  burst needs p = 1 - f^(1/T_RRS), and then *every* activation of
  *every* row carries that swap probability: the expected swaps per
  window are p * ACT_max, thousands of times the tracker's rate.

:func:`expected_swaps_per_window` quantifies exactly that trade-off for
the ablation bench; :class:`ProbabilisticRRS` is a working mitigation
so the claim can also be measured in simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.rit import RowIndirectionTable
from repro.core.swap import SwapEngine
from repro.dram.config import DRAMConfig
from repro.mitigations.base import (
    BankKey,
    Mitigation,
    MitigationOutcome,
    NOOP_OUTCOME,
)
from repro.core.prng import PrinceStylePRNG
from repro.utils.rng import DeterministicRng


def probability_for_threshold(t_rrs: int, failure_probability: float = 1e-6) -> float:
    """The per-ACT swap probability matching the tracker's guarantee.

    A hot row must be swapped within T_RRS activations except with
    probability ``f``: (1-p)^T_RRS <= f.
    """
    if t_rrs <= 0:
        raise ValueError("T_RRS must be positive")
    if not 0.0 < failure_probability < 1.0:
        raise ValueError("failure probability must be in (0, 1)")
    return 1.0 - math.exp(math.log(failure_probability) / t_rrs)


def expected_swaps_per_window(
    t_rrs: int,
    acts_per_window: int = 1_360_000,
    failure_probability: float = 1e-6,
) -> float:
    """Expected swaps per bank per window for probabilistic RRS.

    Every activation of every row rolls the dice, so the swap rate is
    p * ACT_max regardless of how benign the workload is — the paper's
    footnote-1 scalability objection.
    """
    return probability_for_threshold(t_rrs, failure_probability) * acts_per_window


@dataclass
class _BankState:
    rit: RowIndirectionTable
    prng: PrinceStylePRNG


class ProbabilisticRRS(Mitigation):
    """Stateless swap trigger: swap with probability p on each ACT."""

    name = "Prob-RRS"

    def __init__(
        self,
        probability: float,
        dram: DRAMConfig = DRAMConfig(),
        rit_capacity_tuples: int = 3400,
        seed: int = 0,
    ) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self.dram = dram
        self.rit_capacity_tuples = rit_capacity_tuples
        self.total_swaps = 0
        self._rng = DeterministicRng(seed, "prob-rrs")
        self._banks: Dict[BankKey, _BankState] = {}
        self._engine = SwapEngine(dram)
        self._seed = seed

    @classmethod
    def for_threshold(
        cls,
        t_rrs: int,
        failure_probability: float = 1e-6,
        **kwargs,
    ) -> "ProbabilisticRRS":
        """Match the tracker guarantee at threshold ``t_rrs``."""
        return cls(probability_for_threshold(t_rrs, failure_probability), **kwargs)

    # ------------------------------------------------------------------
    # Mitigation interface
    # ------------------------------------------------------------------
    def route(self, bank_key: BankKey, row: int) -> int:
        """RIT lookup (same structure as tracked RRS)."""
        state = self._banks.get(bank_key)
        return row if state is None else state.rit.route(row)

    def on_activation(
        self, bank_key: BankKey, row: int, physical_row: int, now_ns: float
    ) -> MitigationOutcome:
        """Roll the dice; swap to a random same-bank row on success."""
        if self._rng.random() >= self.probability:
            return NOOP_OUTCOME
        state = self._bank(bank_key)
        destination = state.prng.pick_row(
            self.dram.rows_per_bank,
            lambda r: r == row or state.rit.is_swapped(r),
        )
        ops = state.rit.swap(row, destination)
        blocked = self._engine.execute(ops)
        self.total_swaps += 1
        return MitigationOutcome(
            channel_block_ns=blocked,
            swaps=[(op.phys_a, op.phys_b) for op in ops],
        )

    def on_window_end(self, window_index: int) -> None:
        """Unlock RIT entries (no tracker to reset)."""
        for state in self._banks.values():
            state.rit.end_window()

    # ------------------------------------------------------------------
    def _bank(self, bank_key: BankKey) -> _BankState:
        state = self._banks.get(bank_key)
        if state is None:
            state = _BankState(
                rit=RowIndirectionTable(capacity_tuples=self.rit_capacity_tuples),
                prng=PrinceStylePRNG(key=hash(bank_key) ^ self._seed),
            )
            self._banks[bank_key] = state
        return state
