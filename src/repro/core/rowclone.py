"""RowClone-accelerated swapping (paper Section 8.1's optimization).

RowClone (Seshadri et al., MICRO 2013) copies a row to another row of
the same subarray entirely inside DRAM: activate source, then activate
destination before precharging — ~2x tRC per copy instead of streaming
128 lines over the channel. The paper notes RRS's worst-case slowdown
under attack "can be reduced even further with DRAM-based techniques
for faster copying of rows, such as RowClone".

A swap still needs one buffered staging trip (the two rows' data must
cross), so we model a swap as: source -> swap buffer over the bus (one
streamed transfer), destination -> source and buffer -> destination.
Inter-subarray copies fall back to streaming; ``subarray_rows``
controls how often the fast path applies.
"""

from __future__ import annotations

from repro.core.swap import SwapEngine
from repro.dram.config import DRAMConfig


class RowCloneSwapEngine(SwapEngine):
    """Swap engine using in-DRAM copies where the geometry allows."""

    def __init__(
        self,
        config: DRAMConfig = DRAMConfig(),
        latency_scale: float = 1.0,
        subarray_rows: int = 512,
        assume_linked_subarrays: bool = False,
    ) -> None:
        super().__init__(config, latency_scale=latency_scale)
        if subarray_rows <= 0:
            raise ValueError("subarray size must be positive")
        self.subarray_rows = subarray_rows
        # LISA-style inter-subarray links make every in-bank pair fast;
        # without them only same-subarray pairs take the fast path —
        # rare under full-bank randomization (512/128K of swaps), which
        # is why the paper's remark implicitly assumes linked copies.
        self.assume_linked_subarrays = assume_linked_subarrays
        self.fast_swaps = 0
        self.slow_swaps = 0

    def _same_subarray(self, row_a: int, row_b: int) -> bool:
        if self.assume_linked_subarrays:
            return True
        return row_a // self.subarray_rows == row_b // self.subarray_rows

    @property
    def fast_op_latency_ns(self) -> float:
        """One intra-subarray swap: a streamed staging trip plus two
        in-DRAM row copies (~2 tRC each)."""
        return (
            self.config.row_stream_ns + 2 * (2 * self.config.t_rc)
        ) / self.latency_scale

    def execute(self, ops) -> float:
        """Perform exchanges, using RowClone for same-subarray pairs."""
        total = 0.0
        for op in ops:
            if self._same_subarray(op.phys_a, op.phys_b):
                self.fast_swaps += 1
                total += self.fast_op_latency_ns
            else:
                self.slow_swaps += 1
                total += self.op_latency_ns
            self.ops_executed += 1
        self.total_blocked_ns += total
        return total

    @property
    def speedup_when_local(self) -> float:
        """Latency ratio of a streamed swap to a RowClone swap."""
        return self.op_latency_ns / self.fast_op_latency_ns
