"""Randomized Row-Swap: the mitigation controller (paper Section 4).

Wires the Hot-Row Tracker, the Row Indirection Table, the PRNG and the
swap engine into the memory controller's mitigation interface:

* every access routes through the RIT (adding the 4-cycle lookup);
* every ACT feeds the per-bank tracker with the *logical* row;
* when a row's estimate crosses a multiple of T_RRS, the row is swapped
  with a uniformly random row of the same bank, excluding rows already
  tracked by the HRT or present in the RIT (Section 4.4);
* the channel is blocked for the streaming duration of the swap plus
  any lazy-eviction un-swaps it forces;
* at each refresh-window boundary the tracker resets and the RIT's
  lock bits clear.

Also provides :class:`SwapRateDetector`, the footnote-2 extension: a
row needing several swaps within one window is the signature of the
adaptive attack, so flagging it enables a preemptive full refresh.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import RRSConfig
from repro.core.prng import PrinceStylePRNG
from repro.core.rit import RowIndirectionTable
from repro.core.swap import SwapEngine
from repro.dram.config import DRAMConfig
from repro.mitigations.base import (
    BankKey,
    MitigationOutcome,
    NO_DEADLINE,
    NOOP_OUTCOME,
)
from repro.mitigations.batching import BankBatchedMitigation
from repro.track.array_state import ArrayMisraGries
from repro.track.cat_tracker import CATMisraGriesTracker


class SwapRateDetector:
    """Attack detector from the paper's footnote 2.

    The adaptive attack needs one physical row to be a swap endpoint
    k = T_RH/T_RRS times within a single window; benign workloads
    essentially never re-swap the same physical row. Counting per-row
    swap involvement therefore flags an attack long before it can
    succeed, enabling a preemptive refresh of the DRAM.
    """

    def __init__(self, flag_threshold: int = 3) -> None:
        if flag_threshold < 2:
            raise ValueError("flag threshold below 2 would flag benign swaps")
        self.flag_threshold = flag_threshold
        self.flagged = 0
        self._counts: Counter = Counter()

    def note_swap(self, physical_rows: List[int]) -> bool:
        """Record a swap's endpoints; True when an attack is flagged."""
        attack = False
        for row in physical_rows:
            self._counts[row] += 1
            if self._counts[row] >= self.flag_threshold:
                attack = True
        if attack:
            self.flagged += 1
        return attack

    def end_window(self) -> None:
        """Window rollover: swap counts reset with the epoch."""
        self._counts.clear()

    # ------------------------------------------------------------------
    # Snapshotable (repro.state)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (self.flagged, list(self._counts.items()))

    def restore_state(self, state: tuple) -> None:
        flagged, counts = state
        self.flagged = flagged
        self._counts = Counter()
        for row, hits in counts:
            self._counts[row] = hits


@dataclass
class _BankState:
    """Per-bank RRS state: tracker + RIT + PRNG."""

    tracker: object
    rit: RowIndirectionTable
    prng: PrinceStylePRNG
    swaps_this_window: int = 0


class RandomizedRowSwap(BankBatchedMitigation):
    """The paper's defense, pluggable into :class:`MemoryController`."""

    name = "RRS"

    def __init__(
        self,
        config: RRSConfig = RRSConfig(),
        dram: DRAMConfig = DRAMConfig(),
        detector: Optional[SwapRateDetector] = None,
        rit_use_cat: bool = False,
        engine_factory: Optional[Callable[[], SwapEngine]] = None,
    ) -> None:
        self.config = config
        self.dram = dram
        self.detector = detector
        self.rit_use_cat = rit_use_cat
        self.window = 0
        self.total_swaps = 0
        self.swap_history: List[int] = []  # swaps per completed window
        self.preemptive_refreshes = 0  # footnote-2 responses issued
        self._banks: Dict[BankKey, _BankState] = {}
        self._engines: Dict[int, SwapEngine] = {}
        self._engine_factory = engine_factory
        self._swaps_this_window = 0
        # Observability slot (repro.obs): attached to every swap engine
        # (existing and lazily created) so per-op swap/unswap telemetry
        # reaches the metrics registry. Read-only, like `tracer`.
        self.engine_observer = None
        # Batched fast path: per-channel route views (flat bank index
        # -> the bank RIT's sparse forward dict, or None=identity),
        # populated lazily the first time a bank swaps.
        self._route_views: Dict[int, List[Optional[Dict[int, int]]]] = {}

    # ------------------------------------------------------------------
    # Mitigation interface
    # ------------------------------------------------------------------
    def route(self, bank_key: BankKey, row: int) -> int:
        """RIT lookup: where does this logical row's data live?"""
        state = self._banks.get(bank_key)
        if state is None:
            return row
        return state.rit.route(row)

    def lookup_latency_ns(self) -> float:
        """The RIT's 4-CPU-cycle critical-path lookup (Section 4.7)."""
        return self.config.rit_lookup_ns

    def on_activation(
        self,
        bank_key: BankKey,
        row: int,
        physical_row: int,
        now_ns: float,
    ) -> MitigationOutcome:
        """Track the logical row; swap it on each T_RRS multiple."""
        state = self._banks.get(bank_key)
        if state is None:
            state = self._bank(bank_key)
        estimate = state.tracker.observe(row)
        # Swap when the counter lands exactly on a multiple of T_RRS —
        # the hardware comparison Graphene uses. Installs jump counters
        # to spill+1, so a saturated tracker (spill ~ T) does not storm:
        # only counters arriving at a multiple trigger.
        if estimate == 0 or estimate % self.config.t_rrs != 0:
            return NOOP_OUTCOME
        return self._perform_swap(bank_key, state, row, now_ns)

    def on_window_end(self, window_index: int) -> None:
        """Epoch rollover: reset trackers, clear RIT lock bits."""
        self._flush_batch_buffers()
        self.window += 1
        self.swap_history.append(self._swaps_this_window)
        self._swaps_this_window = 0
        for state in self._banks.values():
            state.tracker.reset()
            state.rit.end_window()
            state.swaps_this_window = 0
        if self.detector is not None:
            self.detector.end_window()
        self._reset_batch_credits()

    # ------------------------------------------------------------------
    # Batched activation path (mixin hooks)
    # ------------------------------------------------------------------
    def make_batch_state(self, channel, bank_keys):
        state = super().make_batch_state(channel, bank_keys)
        view: List[Optional[Dict[int, int]]] = [None] * len(state.keys)
        for i, key in enumerate(state.keys):
            bank = self._banks.get(key)
            if bank is not None:
                view[i] = bank.rit.forward
        self._route_views[channel] = view
        return state

    def route_tables(self, channel):
        return self._route_views.get(channel)

    def _apply_deferred(self, bank_key, rows, times, count):
        state = self._banks.get(bank_key)
        if state is None:
            state = self._bank(bank_key)
        state.tracker.observe_block(rows, count)

    def _batch_credit(self, bank_key):
        state = self._banks.get(bank_key)
        if state is None:
            state = self._bank(bank_key)
        return state.tracker.noop_horizon(self.config.t_rrs), NO_DEADLINE

    def storage_bits_per_bank(self, rows_per_bank: int) -> int:
        """SRAM bits per bank (Table 5 geometry; see analysis.storage)."""
        from repro.analysis.storage import rrs_storage_overhead

        return rrs_storage_overhead(self.config, self.dram).total_bits_per_bank

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def bank_state(self, bank_key: BankKey) -> _BankState:
        """This bank's tracker/RIT/PRNG bundle (creates lazily)."""
        return self._bank(bank_key)

    def swap_engine(self, channel: int) -> SwapEngine:
        """The per-channel swap engine (creates lazily)."""
        engine = self._engines.get(channel)
        if engine is None:
            if self._engine_factory is not None:
                engine = self._engine_factory()
            else:
                engine = SwapEngine(
                    self.dram, latency_scale=float(self.config.time_scale)
                )
            if self.engine_observer is not None:
                engine.observer = self.engine_observer
            self._engines[channel] = engine
        return engine

    # ------------------------------------------------------------------
    # Snapshotable (repro.state). Per-bank bundles are rebuilt through
    # ``_bank`` (the seeds are config-derived, so a fresh construction
    # matches) and restored component-wise. The batched route views are
    # republished *in place* afterwards — the controller may hold the
    # view lists by reference — and credits re-primed from the restored
    # trackers.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            self.window,
            self.total_swaps,
            list(self.swap_history),
            self.preemptive_refreshes,
            self._swaps_this_window,
            {
                key: (
                    state.tracker.snapshot_state(),
                    state.rit.snapshot_state(),
                    state.prng.snapshot_state(),
                    state.swaps_this_window,
                )
                for key, state in self._banks.items()
            },
            {
                channel: engine.snapshot_state()
                for channel, engine in self._engines.items()
            },
            None if self.detector is None else self.detector.snapshot_state(),
        )

    def restore_state(self, state: tuple) -> None:
        (
            self.window,
            self.total_swaps,
            swap_history,
            self.preemptive_refreshes,
            self._swaps_this_window,
            banks,
            engines,
            detector_state,
        ) = state
        self.swap_history = list(swap_history)
        self._banks = {}
        for key, (tracker_state, rit_state, prng_state, swaps) in banks.items():
            bank = self._bank(key)
            bank.tracker.restore_state(tracker_state)
            bank.rit.restore_state(rit_state)
            bank.prng.restore_state(prng_state)
            bank.swaps_this_window = swaps
        for channel, engine_state in engines.items():
            self.swap_engine(channel).restore_state(engine_state)
        if self.detector is not None and detector_state is not None:
            self.detector.restore_state(detector_state)
        for channel, view in self._route_views.items():
            batch = self._batch_states[channel]
            for i, key in enumerate(batch.keys):
                bank = self._banks.get(key)
                view[i] = None if bank is None else bank.rit.forward
        self._reset_batch_credits()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bank(self, bank_key: BankKey) -> _BankState:
        state = self._banks.get(bank_key)
        if state is None:
            seed = hash(bank_key) ^ self.config.seed
            if self.config.tracker_backend == "cat":
                tracker = CATMisraGriesTracker(
                    entries=self.config.tracker_entries, seed=seed
                )
            else:
                # Array-state HRT: Figure-3 semantics with slot storage
                # and a defined tie-break. At Invariant-1 sizing the
                # spill counter never reaches the bucket minimum, so no
                # eviction (hence no tie-break) ever fires and results
                # match the set-based reference bit-for-bit.
                tracker = ArrayMisraGries(entries=self.config.tracker_entries)
            state = _BankState(
                tracker=tracker,
                rit=RowIndirectionTable(
                    capacity_tuples=self.config.rit_capacity_tuples,
                    use_cat=self.rit_use_cat,
                    seed=seed,
                ),
                prng=PrinceStylePRNG(key=seed),
            )
            self._banks[bank_key] = state
        return state

    def _perform_swap(
        self, bank_key: BankKey, state: _BankState, row: int, now_ns: float
    ) -> MitigationOutcome:
        destination = self._pick_destination(state, row)
        ops = state.rit.swap(row, destination)
        view = self._route_views.get(bank_key[0])
        if view is not None:
            # First swap for this bank under the batched fast path:
            # publish its RIT forward dict into the controller's view
            # (identity until now). Idempotent — the dict is shared, so
            # later swaps mutate it in place.
            batch = self._batch_states[bank_key[0]]
            index = batch.index_of[bank_key]
            if view[index] is None:
                view[index] = state.rit.forward
        engine = self.swap_engine(bank_key[0])
        blocked_ns = engine.execute(ops)
        self.total_swaps += 1
        self._swaps_this_window += 1
        state.swaps_this_window += 1
        swaps = [(op.phys_a, op.phys_b) for op in ops]
        refresh_all = False
        if self.detector is not None:
            if self.detector.note_swap([r for pair in swaps for r in pair]):
                # Footnote 2: an imminent attack was flagged; preempt it
                # with a whole-bank refresh. The burst costs ~2.8ms of
                # channel time (the paper's minimum full-refresh time),
                # paid only under active attack.
                refresh_all = True
                self.preemptive_refreshes += 1
                blocked_ns += 2.8e6 / self.config.time_scale
        tracer = self.tracer
        if tracer is not None and tracer.wants("rrs.swap"):
            tracer.emit(
                "rrs.swap",
                "swap",
                now_ns,
                track=("bank",) + bank_key,
                args={
                    "row": row,
                    "destination": destination,
                    "ops": len(ops),
                    "pairs": [[op.kind, op.phys_a, op.phys_b] for op in ops],
                    "blocked_ns": blocked_ns,
                },
            )
        return MitigationOutcome(
            channel_block_ns=blocked_ns,
            swaps=swaps,
            refresh_all_bank=refresh_all,
        )

    def _pick_destination(self, state: _BankState, row: int) -> int:
        """Random destination excluding HRT/RIT residents (Section 4.4)."""

        def is_excluded(candidate: int) -> bool:
            if candidate == row:
                return True
            if state.rit.is_swapped(candidate):
                return True
            if (
                self.config.exclude_tracked_destinations
                and candidate in state.tracker
            ):
                return True
            return False

        return state.prng.pick_row(self.config.rows_per_bank, is_excluded)
