"""Randomized Row-Swap (RRS) — the paper's primary contribution.

The defense couples three pieces:

* a **Hot-Row Tracker** (``repro.track``) that flags any row crossing a
  multiple of the swap threshold T_RRS within a refresh window,
* a **Row Indirection Table** (:class:`RowIndirectionTable`) holding the
  logical->physical mapping of swapped rows, consulted on every access,
* a **swap engine** (:class:`SwapEngine`) that streams row contents
  through per-channel swap buffers, charging the channel-blocking
  latencies of Section 4.4.

:class:`RandomizedRowSwap` wires them into the memory controller's
mitigation interface.
"""

from repro.core.config import RRSConfig
from repro.core.prng import PrinceStylePRNG, keyed_hash, splitmix64
from repro.core.rit import RITEntry, RowIndirectionTable
from repro.core.swap import SwapEngine, SwapOp
from repro.core.rrs import RandomizedRowSwap, SwapRateDetector
from repro.core.probabilistic import (
    ProbabilisticRRS,
    expected_swaps_per_window,
    probability_for_threshold,
)
from repro.core.rowclone import RowCloneSwapEngine

__all__ = [
    "RRSConfig",
    "PrinceStylePRNG",
    "keyed_hash",
    "splitmix64",
    "RITEntry",
    "RowIndirectionTable",
    "SwapEngine",
    "SwapOp",
    "RandomizedRowSwap",
    "SwapRateDetector",
    "ProbabilisticRRS",
    "expected_swaps_per_window",
    "probability_for_threshold",
    "RowCloneSwapEngine",
]
