"""Row-swap engine and swap buffers (paper Section 4.4).

A row swap streams both rows through two per-channel SRAM swap buffers:
Row-X -> Buffer-1, Row-Y -> Buffer-2, Buffer-1 -> Row-Y, Buffer-2 ->
Row-X — four whole-row transfers. With DDR4-3200 streaming (one 64B
line per 4 bus cycles after the 45ns activation) one transfer takes
~365ns, so one swap costs ~1.46us of channel-blocked time; a swap that
also evicts an RIT tuple un-swaps it back-to-back for ~2.9us; the worst
case (re-swap plus eviction) reaches ~4.4us.

The engine converts the RIT's physical operations into latency and
keeps the accounting the performance model charges to the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dram.config import DRAMConfig


@dataclass(frozen=True)
class SwapOp:
    """One physical row exchange (a swap or a lazy-eviction un-swap)."""

    phys_a: int
    phys_b: int
    kind: str  # "swap" | "unswap"

    def __post_init__(self) -> None:
        if self.kind not in ("swap", "unswap"):
            raise ValueError("kind must be 'swap' or 'unswap'")


@dataclass
class SwapBuffer:
    """One per-channel SRAM row buffer used for swap staging."""

    size_bytes: int
    holder: int = -1  # physical row currently staged, -1 when empty

    def load(self, row: int) -> None:
        """Stage a row's contents (DRAM -> SRAM stream)."""
        self.holder = row

    def store(self) -> int:
        """Write the staged contents back out (SRAM -> DRAM stream)."""
        if self.holder < 0:
            raise RuntimeError("swap buffer is empty")
        row, self.holder = self.holder, -1
        return row

    def snapshot_state(self) -> tuple:
        return (self.holder,)

    def restore_state(self, state: tuple) -> None:
        (self.holder,) = state


class SwapEngine:
    """Executes swap operations and accounts their channel-block time."""

    def __init__(
        self, config: DRAMConfig = DRAMConfig(), latency_scale: float = 1.0
    ) -> None:
        if latency_scale <= 0:
            raise ValueError("latency scale must be positive")
        self.config = config
        self.latency_scale = latency_scale
        self.buffer_1 = SwapBuffer(size_bytes=config.row_size_bytes)
        self.buffer_2 = SwapBuffer(size_bytes=config.row_size_bytes)
        self.ops_executed = 0
        self.total_blocked_ns = 0.0
        # Observability hook (repro.obs): called with (op, latency_ns)
        # for every executed exchange. Read-only — the latency math
        # above is already final when the observer fires.
        self.observer = None

    @property
    def op_latency_ns(self) -> float:
        """Latency of one physical row exchange (~1.46us on DDR4-3200).

        Divided by ``latency_scale`` on time-scaled runs so the blocked
        *fraction* of the (shortened) epoch matches full scale.
        """
        return self.config.row_swap_ns / self.latency_scale

    def execute(self, ops: Iterable[SwapOp]) -> float:
        """Perform a batch of exchanges; returns total blocked time.

        Models the four-transfer choreography through the two swap
        buffers for each operation; the channel cannot service requests
        during the streaming, which is why the returned duration gets
        charged as a channel block by the memory controller.
        """
        total = 0.0
        for op in ops:
            self.buffer_1.load(op.phys_a)
            self.buffer_2.load(op.phys_b)
            # Buffer-1 (old A data) lands in B's frame and vice versa.
            self.buffer_1.store()
            self.buffer_2.store()
            total += self.op_latency_ns
            self.ops_executed += 1
            if self.observer is not None:
                self.observer(op, self.op_latency_ns)
        self.total_blocked_ns += total
        return total

    # ------------------------------------------------------------------
    # Snapshotable (repro.state): the buffers drain within execute(),
    # so between requests only the accounting (and the staged-row
    # markers, always -1 at a cut) is live.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            self.ops_executed,
            self.total_blocked_ns,
            self.buffer_1.holder,
            self.buffer_2.holder,
        )

    def restore_state(self, state: tuple) -> None:
        (
            self.ops_executed,
            self.total_blocked_ns,
            self.buffer_1.holder,
            self.buffer_2.holder,
        ) = state
