"""Row Indirection Table (RIT) — paper Sections 4.3 and 6.3.

The RIT records which rows have been swapped so every memory access can
be routed to the right physical location. We represent the mapping as a
sparse permutation over row addresses:

* ``route(row)`` returns where ``row``'s data physically lives (itself
  when unswapped) — the per-access lookup.
* A plain swap of X and Y creates the involutive pair the paper's
  Figure 4 shows: two directional entries, X->Y and Y->X (one "tuple").
* A *re-swap* of an already-swapped row extends the permutation cycle,
  consuming additional entries — the reason the paper sizes the RIT at
  twice the tracker's swap budget (3400 tuples = 6800 directional
  entries for 1700 swaps per window).

Lock bits: an entry installed in the current refresh window may not be
evicted (the security argument of Section 5.4 depends on swapped rows
staying swapped for the whole window). At window end all lock bits
clear and stale entries drain lazily — each eviction un-swaps one row
(a physical exchange moving its data home), the paper's lazy drain.

Storage fidelity: entries can optionally live in a
:class:`CollisionAvoidanceTable` with the paper's RIT geometry
(2 tables x 256 sets x 20 ways, Section 6.3), or in a plain dict for
speed; behaviour is identical as long as the CAT never conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.swap import SwapOp
from repro.track.cat import CATConfig, CollisionAvoidanceTable

# The paper's RIT CAT geometry (Section 6.3).
RIT_CAT_CONFIG = CATConfig(sets=256, demand_ways=14, extra_ways=6)


@dataclass
class RITEntry:
    """One directional entry: data of ``logical`` lives at ``physical``."""

    physical: int
    window: int  # install window; == current window -> lock bit set


class RowIndirectionTable:
    """Sparse logical->physical permutation with locked-entry eviction."""

    def __init__(
        self,
        capacity_tuples: int = 3400,
        use_cat: bool = False,
        seed: int = 0,
        evict_rng: Optional[Callable[[int], int]] = None,
    ) -> None:
        if capacity_tuples <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_tuples = capacity_tuples
        self.window = 0
        self.installs = 0
        self.evictions = 0
        self._map: Dict[int, RITEntry] = {}
        self._inverse: Dict[int, int] = {}  # physical -> logical
        self._evict_rng = evict_rng
        self._cat: Optional[CollisionAvoidanceTable] = (
            CollisionAvoidanceTable(RIT_CAT_CONFIG, seed=seed) if use_cat else None
        )
        # Plain logical->physical int mapping mirroring ``_map`` (which
        # carries the window/lock metadata): the per-access lookup is
        # one ``dict.get(row, row)`` with no attribute hop, and the
        # controller's inline fast path reads this dict directly. Kept
        # in sync by the two mutation choke points below.
        self.forward: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lookup path (on every memory access)
    # ------------------------------------------------------------------
    def route(self, row: int) -> int:
        """Physical row holding ``row``'s data (itself when unswapped)."""
        return self.forward.get(row, row)

    def resident_of(self, physical: int) -> int:
        """Logical row whose data occupies a physical location."""
        return self._inverse.get(physical, physical)

    def is_swapped(self, row: int) -> bool:
        """True when the row participates in any swap."""
        return row in self._map

    @property
    def entries_used(self) -> int:
        """Directional entries currently stored."""
        return len(self._map)

    @property
    def capacity_entries(self) -> int:
        """Directional-entry capacity (2 per tuple)."""
        return 2 * self.capacity_tuples

    def __len__(self) -> int:
        return len(self._map)

    # ------------------------------------------------------------------
    # Swap / unswap
    # ------------------------------------------------------------------
    def swap(self, row_a: int, row_b: int) -> List[SwapOp]:
        """Exchange the data of logical rows A and B.

        Returns the physical operations to perform, *including* any
        eviction-driven un-swaps needed to make room. Raises when every
        resident entry is locked (cannot happen with the paper's
        sizing — asserted by the security tests).
        """
        if row_a == row_b:
            raise ValueError("cannot swap a row with itself")
        ops: List[SwapOp] = []
        # A swap adds at most 2 directional entries; evict until 2 free.
        while self.entries_used > self.capacity_entries - 2:
            ops.append(self._evict_one())

        phys_a = self.route(row_a)
        phys_b = self.route(row_b)
        ops.append(SwapOp(phys_a=phys_a, phys_b=phys_b, kind="swap"))

        # Atomic pair update: clear both rows' old mappings first, then
        # install the new ones, so inverse bookkeeping never collides.
        self._remove_forward(row_a)
        self._remove_forward(row_b)
        self._insert_forward(row_a, phys_b, self.window)
        self._insert_forward(row_b, phys_a, self.window)
        self.installs += 1
        return ops

    def end_window(self) -> None:
        """Clear all lock bits (entries become evictable next window)."""
        self.window += 1

    def locked_entries(self) -> int:
        """Entries installed in the current window (not evictable)."""
        return sum(1 for e in self._map.values() if e.window == self.window)

    def drain(self, max_evictions: Optional[int] = None) -> List[SwapOp]:
        """Proactively un-swap stale entries (the periodic drain the
        paper suggests to avoid worst-case 4.4us swap chains)."""
        ops: List[SwapOp] = []
        while self._has_evictable() and (
            max_evictions is None or len(ops) < max_evictions
        ):
            ops.append(self._evict_one())
        return ops

    # ------------------------------------------------------------------
    # Snapshotable (repro.state)
    #
    # ``_map`` is captured in insertion order: ``_evictable_rows``
    # iterates it and the default eviction policy takes the first
    # candidate, so the order is part of the observable state. The
    # ``forward`` dict is restored *in place* — the RRS front end hands
    # the controller direct references to it as a route view, and those
    # aliases must keep seeing the restored mapping.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            self.window,
            self.installs,
            self.evictions,
            [
                (row, entry.physical, entry.window)
                for row, entry in self._map.items()
            ],
            None if self._cat is None else self._cat.snapshot_state(),
        )

    def restore_state(self, state: tuple) -> None:
        window, installs, evictions, entries, cat_state = state
        self.window = window
        self.installs = installs
        self.evictions = evictions
        self._map.clear()
        self.forward.clear()
        self._inverse.clear()
        for row, physical, entry_window in entries:
            self._map[row] = RITEntry(physical=physical, window=entry_window)
            self.forward[row] = physical
            self._inverse[physical] = row
        if self._cat is not None:
            self._cat.restore_state(cat_state)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _remove_forward(self, row: int) -> Optional[RITEntry]:
        entry = self._map.pop(row, None)
        if entry is not None:
            del self.forward[row]
            self._inverse.pop(entry.physical, None)
            if self._cat is not None:
                self._cat.remove(row)
        return entry

    def _insert_forward(self, row: int, physical: int, window: int) -> None:
        if row == physical:
            return  # identity mappings are simply absent
        self._map[row] = RITEntry(physical=physical, window=window)
        self.forward[row] = physical
        self._inverse[physical] = row
        if self._cat is not None:
            self._cat.insert(row, physical)

    def _evictable_rows(self) -> List[int]:
        """Stale entries whose un-swap cannot disturb a locked entry.

        Un-swapping row L displaces the resident of physical L (the
        cycle predecessor). If that predecessor's entry is locked
        (installed this window), evicting L would rewrite — possibly
        even un-swap — a protected entry, so such victims are skipped;
        they become evictable when the window ends.
        """
        out = []
        for row, entry in self._map.items():
            if entry.window == self.window:
                continue
            displaced = self._inverse[row]
            if displaced != row:
                displaced_entry = self._map.get(displaced)
                if (
                    displaced_entry is not None
                    and displaced_entry.window == self.window
                ):
                    continue
            out.append(row)
        return out

    def _has_evictable(self) -> bool:
        return bool(self._evictable_rows())

    def _evict_one(self) -> SwapOp:
        """Un-swap one unlocked entry; returns the physical exchange.

        Moving row L's data home (from physical P back to physical L)
        displaces whatever data occupied physical L onto P: the
        permutation cycle shortens by one, and a plain 2-cycle vanishes
        entirely.
        """
        candidates = self._evictable_rows()
        if not candidates:
            raise RuntimeError(
                "RIT full of locked entries — capacity was sized below "
                "the per-window swap budget"
            )
        if self._evict_rng is not None:
            victim = candidates[self._evict_rng(len(candidates))]
        else:
            victim = candidates[0]
        entry = self._map[victim]
        phys = entry.physical
        displaced = self._inverse[victim]  # whose data sits at physical `victim`

        # Physical exchange: victim's data (at `phys`) <-> data at `victim`.
        op = SwapOp(phys_a=phys, phys_b=victim, kind="unswap")

        self._remove_forward(victim)
        if displaced != victim:
            displaced_entry = self._remove_forward(displaced)
            # The displaced row's data moved from physical `victim` to
            # `phys`; it keeps its own install window — a locked
            # (current-window) bystander stays locked, a stale one
            # stays evictable.
            window = entry.window if displaced_entry is None else displaced_entry.window
            self._insert_forward(displaced, phys, window)
        self.evictions += 1
        return op
