"""repro — a from-scratch reproduction of Randomized Row-Swap (RRS).

Saileshwar, Wang, Qureshi, Nair: "Randomized Row-Swap: Mitigating Row
Hammer by Breaking Spatial Correlation between Aggressor and Victim
Rows", ASPLOS 2022.

Quickstart::

    from repro import (
        DRAMConfig, SystemConfig, SystemSimulator,
        RRSConfig, RandomizedRowSwap,
    )
    from repro.workloads import get_workload, SyntheticTraceGenerator

    spec = get_workload("bzip2")
    config = SystemConfig()
    rrs = RandomizedRowSwap(RRSConfig(), config.dram)
    sim = SystemSimulator(config, mitigation=rrs)
    traces = [
        SyntheticTraceGenerator(spec, core_id=i).records(20_000)
        for i in range(config.cores)
    ]
    metrics = sim.run(traces, workload=spec.name)
    print(metrics.ipc, metrics.swaps)

Package layout mirrors the system inventory in DESIGN.md: ``dram`` is
the device model, ``mem`` the memory-system simulator, ``workloads``
the calibrated synthetic traces, ``track`` the tracking structures,
``core`` the RRS defense itself, ``mitigations`` the baselines,
``attacks`` the attack generators, ``analysis`` the paper's
analytical security/storage/power models, and ``exec`` the sweep
executor (parallel fan-out + content-addressed result caching).
"""

from repro.dram import DRAMConfig, DisturbanceModel
from repro.mem import SystemConfig, SystemSimulator, SimMetrics
from repro.core import RRSConfig, RandomizedRowSwap
from repro.mitigations import (
    Mitigation,
    NoMitigation,
    PARA,
    Graphene,
    TWiCe,
    TargetedRowRefresh,
    IdealVictimRefresh,
    BlockHammer,
)

__version__ = "1.0.0"

__all__ = [
    "DRAMConfig",
    "DisturbanceModel",
    "SystemConfig",
    "SystemSimulator",
    "SimMetrics",
    "RRSConfig",
    "RandomizedRowSwap",
    "Mitigation",
    "NoMitigation",
    "PARA",
    "Graphene",
    "TWiCe",
    "TargetedRowRefresh",
    "IdealVictimRefresh",
    "BlockHammer",
    "__version__",
]
