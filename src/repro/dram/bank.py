"""Bank model: timing state + per-window activation accounting +
optional disturbance (fault) model.

The bank is the unit every Row Hammer quantity in the paper is defined
over: ACT_max is per bank per 64 ms, swaps pick destinations within the
bank, and the adaptive attack randomizes over the 128K rows of one bank.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.dram.config import DRAMConfig
from repro.dram.faults import DisturbanceModel
from repro.dram.timing import AccessOutcome, BankTimingState


class Bank:
    """One DRAM bank: row buffer, timing, activation counts, faults."""

    __slots__ = (
        "config",
        "channel",
        "rank",
        "index",
        "timing",
        "disturbance",
        "window_act_counts",
        "total_activations",
        "windows_elapsed",
        "_rows_per_bank",
    )

    def __init__(
        self,
        config: DRAMConfig,
        channel: int = 0,
        rank: int = 0,
        index: int = 0,
        disturbance: Optional[DisturbanceModel] = None,
    ) -> None:
        self.config = config
        self.channel = channel
        self.rank = rank
        self.index = index
        self.timing = BankTimingState(config=config)
        self.disturbance = disturbance
        # Per-window activation counts keyed by *physical* row.
        self.window_act_counts: Counter = Counter()
        self.total_activations = 0
        self.windows_elapsed = 0
        self._rows_per_bank = config.rows_per_bank

    # ------------------------------------------------------------------
    # Data-path events
    # ------------------------------------------------------------------
    def access(self, row: int, now_ns: float) -> AccessOutcome:
        """Column access to ``row``; records an ACT on row-buffer miss.

        Runs once per serviced request: the row check and activation
        accounting are inlined rather than delegated to the helper
        methods the colder entry points use.
        """
        if not 0 <= row < self._rows_per_bank:
            raise ValueError(
                f"row {row} out of range [0, {self._rows_per_bank})"
            )
        outcome = self.timing.access(row, now_ns)
        if outcome.activated:
            self.window_act_counts[row] += 1
            self.total_activations += 1
            if self.disturbance is not None:
                self.disturbance.on_activate(row)
        return outcome

    def activate(self, row: int, now_ns: float = 0.0) -> float:
        """Explicit ACT (attack drivers, swap streaming); returns time."""
        self._check_row(row)
        act_at = self.timing.activate_only(row, now_ns)
        self._note_activation(row)
        return act_at

    def refresh_row(self, row: int) -> None:
        """Targeted mitigative refresh of a physical row."""
        self._check_row(row)
        if self.disturbance is not None:
            self.disturbance.on_refresh_row(row)

    def end_window(self) -> None:
        """Refresh-window rollover: counts reset, charge restored."""
        self.window_act_counts.clear()
        self.windows_elapsed += 1
        if self.disturbance is not None:
            self.disturbance.end_window()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def acts_this_window(self, row: int) -> int:
        """Activations of a physical row in the current window."""
        return self.window_act_counts.get(row, 0)

    def rows_with_at_least(self, threshold: int) -> list:
        """Physical rows with >= ``threshold`` ACTs this window."""
        return [row for row, count in self.window_act_counts.items() if count >= threshold]

    @property
    def key(self) -> tuple:
        """Hashable bank identity (channel, rank, index)."""
        return (self.channel, self.rank, self.index)

    @property
    def kernel_inlineable(self) -> bool:
        """Whether the block kernel may run this bank on its flat SoA
        timing arrays: nothing is watching the command stream and no
        fault model needs per-ACT callbacks. Observed or faulted banks
        are serviced through :meth:`access` inside the kernel so every
        command still reaches its consumers."""
        return self.timing.observer is None and self.disturbance is None

    # ------------------------------------------------------------------
    # Snapshotable (repro.state). The disturbance model is snapshotted
    # by its own protocol implementation (the device owns that
    # round-trip); the bank covers timing plus activation accounting.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            self.timing.snapshot_state(),
            dict(self.window_act_counts),
            self.total_activations,
            self.windows_elapsed,
        )

    def restore_state(self, state: tuple) -> None:
        timing_state, act_counts, total_activations, windows_elapsed = state
        self.timing.restore_state(timing_state)
        self.window_act_counts = Counter()
        for row, count in act_counts.items():
            self.window_act_counts[row] = count
        self.total_activations = total_activations
        self.windows_elapsed = windows_elapsed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.config.rows_per_bank:
            raise ValueError(
                f"row {row} out of range [0, {self.config.rows_per_bank})"
            )

    def _note_activation(self, row: int) -> None:
        self.window_act_counts[row] += 1
        self.total_activations += 1
        if self.disturbance is not None:
            self.disturbance.on_activate(row)
