"""Periodic refresh scheduling.

Two granularities, matching how the paper reasons about refresh:

* **tREFI/tRFC**: every 7.8 us each rank performs one refresh burst that
  blocks it for 350 ns — this is the ~4.5% duty-cycle tax baked into
  ACT_max = 1.36 M activations per 64 ms.
* **Refresh window (64 ms)**: every row's charge is restored once per
  window, so disturbance accounting and activation counting both reset
  at window boundaries (the paper's "epoch").
"""

from __future__ import annotations

from typing import List

from repro.dram.config import DRAMConfig
from repro.dram.device import Channel


class RefreshScheduler:
    """Advances refresh state for a set of channels as sim time moves.

    ``window_callbacks`` are invoked with the completed window's index
    at every refresh-window boundary — the hook mitigations use for
    epoch rollover (HRT reset, RIT lock-bit clearing).
    """

    def __init__(
        self,
        config: DRAMConfig,
        channels: List[Channel],
        window_callbacks: list = None,
        max_postponed: int = 0,
    ) -> None:
        if max_postponed < 0 or max_postponed > 8:
            raise ValueError("DDR4 allows postponing at most 8 refreshes")
        self.config = config
        self.channels = channels
        self.window_callbacks = list(window_callbacks or [])
        # Read-only observers that need the closing window's state
        # *before* the rollover clears it (per-bank activation counts):
        # invoked with the completed window's index, ahead of
        # ``end_window``. Mutating hooks belong in window_callbacks.
        self.pre_window_callbacks: list = []
        # DDR4 refresh flexibility: up to 8 REF commands may be
        # postponed while a rank is busy, paid back as a burst later.
        self.max_postponed = max_postponed
        self.postponed = 0
        self.postponements = 0
        self._next_refi_ns = float(config.t_refi)
        self._next_window_ns = float(config.refresh_window_ns)
        # Earliest time any refresh event is due: callers on the hot
        # path compare against this before paying for advance_to().
        self.next_due_ns = min(self._next_refi_ns, self._next_window_ns)
        self.refresh_bursts = 0
        self.windows_completed = 0
        # Optional hook called with (start_ns, bursts) whenever refresh
        # executes — the cadence check of repro.check.sanitizer and the
        # `refresh` trace category of repro.obs (chained when both are
        # installed). Observers read state only; they never reschedule.
        self.observer = None

    @property
    def current_window(self) -> int:
        """Index of the refresh window containing the current time."""
        return self.windows_completed

    def advance_to(self, now_ns: float) -> None:
        """Apply every refresh event scheduled at or before ``now``."""
        while self._next_refi_ns <= now_ns:
            if self.max_postponed and self.postponed < self.max_postponed and (
                self._rank_busy_at(self._next_refi_ns)
            ):
                self.postponed += 1
                self.postponements += 1
            else:
                # Pay back any postponed refreshes as a burst.
                bursts = 1 + self.postponed
                self.postponed = 0
                start = self._next_refi_ns
                if self.observer is not None:
                    self.observer(start, bursts)
                for _ in range(bursts):
                    for channel in self.channels:
                        for rank in channel.ranks:
                            rank.block_for_refresh(start)
                    self.refresh_bursts += 1
                    start += self.config.t_rfc
            self._next_refi_ns += self.config.t_refi
        self._advance_windows(now_ns)
        self.next_due_ns = min(self._next_refi_ns, self._next_window_ns)

    # ------------------------------------------------------------------
    # Snapshotable (repro.state): schedule cursors and counters; the
    # channels restore themselves through their own protocol.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            self.postponed,
            self.postponements,
            self._next_refi_ns,
            self._next_window_ns,
            self.next_due_ns,
            self.refresh_bursts,
            self.windows_completed,
        )

    def restore_state(self, state: tuple) -> None:
        (
            self.postponed,
            self.postponements,
            self._next_refi_ns,
            self._next_window_ns,
            self.next_due_ns,
            self.refresh_bursts,
            self.windows_completed,
        ) = state

    def _rank_busy_at(self, time_ns: float) -> bool:
        """True when any bank has work scheduled past ``time_ns``."""
        return any(
            bank.timing.ready_ns > time_ns
            for channel in self.channels
            for bank in channel.iter_banks()
        )

    def _advance_windows(self, now_ns: float) -> None:
        while self._next_window_ns <= now_ns:
            for callback in self.pre_window_callbacks:
                callback(self.windows_completed)
            for channel in self.channels:
                channel.end_window()
            for callback in self.window_callbacks:
                callback(self.windows_completed)
            self.windows_completed += 1
            self._next_window_ns += self.config.refresh_window_ns
