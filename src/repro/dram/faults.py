"""Row Hammer disturbance fault model.

Models the physics the paper's security argument rests on (Section 5.1):
a row whose *effective* activation-induced disturbance since its last
charge restore crosses the Row Hammer threshold ``T_RH`` may flip bits.

Effective disturbance on row ``v``:

* Every ACT of row ``v±1`` adds 1.0 (classic blast radius 1).
* Every ACT of row ``v±2`` adds ``distance2_coupling`` (weak direct
  coupling; measured values put it around 4.8K/296K ~ 0.016 [12]).
* A *targeted mitigative refresh* of a row internally activates it, so
  it restores that row's charge **and disturbs its own neighbours like
  an ACT does**. This is exactly the amplification loop the Half-Double
  attack exploits: victim-focused mitigation turns hammering of a
  near-aggressor into a stream of refresh-activations on the far
  aggressor, flipping bits two rows away.
* A row's own ACT (or refresh) restores its charge — disturbance resets.

The periodic auto-refresh restores every row once per refresh window,
which is why the paper counts activations per 64 ms window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np


@dataclass(frozen=True)
class BitFlipEvent:
    """One Row Hammer bit flip: which physical row, when, and why."""

    row: int
    window: int
    disturbance: float
    cause: str  # "activate" | "refresh"

    def __str__(self) -> str:
        return (
            f"bit-flip in row {self.row} (window {self.window}, "
            f"disturbance {self.disturbance:.0f}, via {self.cause})"
        )


class DisturbanceModel:
    """Per-bank accumulated-disturbance state with flip detection.

    ``rows`` are *physical* DRAM rows: the RRS indirection layer sits
    above this model, so swaps change which logical row's activations
    land on which physical neighbourhood — precisely the spatial
    decorrelation the paper's defense provides.
    """

    def __init__(
        self,
        rows: int,
        t_rh: float = 4800.0,
        distance2_coupling: float = 0.016,
        refresh_disturbs_neighbors: bool = True,
    ) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        if t_rh <= 0:
            raise ValueError("T_RH must be positive")
        if not 0.0 <= distance2_coupling <= 1.0:
            raise ValueError("distance-2 coupling must be in [0, 1]")
        self.rows = rows
        self.t_rh = float(t_rh)
        self.distance2_coupling = float(distance2_coupling)
        self.refresh_disturbs_neighbors = refresh_disturbs_neighbors
        self.window = 0
        self.flips: List[BitFlipEvent] = []
        self._disturbance = np.zeros(rows, dtype=np.float64)
        self._flipped_this_window = np.zeros(rows, dtype=bool)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def on_activate(self, row: int, count: int = 1, cause: str = "activate") -> None:
        """Apply ``count`` back-to-back activations of a physical row."""
        self._check_row(row)
        if count <= 0:
            return
        self._disturbance[row] = 0.0  # an ACT restores the row's own cells
        self._disturb(row - 1, float(count), cause)
        self._disturb(row + 1, float(count), cause)
        if self.distance2_coupling > 0.0:
            self._disturb(row - 2, count * self.distance2_coupling, cause)
            self._disturb(row + 2, count * self.distance2_coupling, cause)

    def on_activate_many(self, rows: Iterable[int]) -> None:
        """Vectorized bulk form of :meth:`on_activate` for attack drivers."""
        row_array = np.asarray(list(rows), dtype=np.int64)
        if row_array.size == 0:
            return
        if row_array.min() < 0 or row_array.max() >= self.rows:
            raise ValueError("row index out of range")
        counts = np.bincount(row_array, minlength=self.rows).astype(np.float64)
        hammered = counts > 0
        self._disturbance[hammered] = 0.0
        delta = np.zeros(self.rows, dtype=np.float64)
        delta[:-1] += counts[1:]
        delta[1:] += counts[:-1]
        if self.distance2_coupling > 0.0:
            delta[:-2] += counts[2:] * self.distance2_coupling
            delta[2:] += counts[:-2] * self.distance2_coupling
        self._disturbance += delta
        self._record_flips(np.nonzero(delta > 0)[0], "activate")

    def on_refresh_row(self, row: int) -> None:
        """Targeted (mitigative) refresh: restore ``row``, disturb r±1.

        The neighbour disturbance is the Half-Double enabling mechanism;
        it can be disabled to model an idealized refresh with no side
        effects (used as an ablation in the comparison bench).
        """
        self._check_row(row)
        self._disturbance[row] = 0.0
        if self.refresh_disturbs_neighbors:
            self._disturb(row - 1, 1.0, "refresh")
            self._disturb(row + 1, 1.0, "refresh")
            if self.distance2_coupling > 0.0:
                self._disturb(row - 2, self.distance2_coupling, "refresh")
                self._disturb(row + 2, self.distance2_coupling, "refresh")

    def end_window(self) -> None:
        """Periodic auto-refresh: every row's charge is restored."""
        self._disturbance[:] = 0.0
        self._flipped_this_window[:] = False
        self.window += 1

    def refresh_all(self) -> None:
        """Preemptive whole-bank refresh (footnote 2): restore every
        row's charge without advancing the window bookkeeping."""
        self._disturbance[:] = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def disturbance_of(self, row: int) -> float:
        """Accumulated disturbance of a row in the current window."""
        self._check_row(row)
        return float(self._disturbance[row])

    @property
    def flip_count(self) -> int:
        """Total bit-flip events recorded so far."""
        return len(self.flips)

    def rows_over(self, threshold: float) -> np.ndarray:
        """Physical rows whose current-window disturbance >= threshold."""
        return np.nonzero(self._disturbance >= threshold)[0]

    # ------------------------------------------------------------------
    # Snapshotable (repro.state): flip events travel as plain tuples
    # (the frozen dataclass is rebuilt on restore).
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            self.window,
            [(e.row, e.window, e.disturbance, e.cause) for e in self.flips],
            self._disturbance.copy(),
            self._flipped_this_window.copy(),
        )

    def restore_state(self, state: tuple) -> None:
        window, flips, disturbance, flipped = state
        self.window = window
        self.flips = [
            BitFlipEvent(row=row, window=w, disturbance=d, cause=cause)
            for row, w, d, cause in flips
        ]
        self._disturbance[:] = disturbance
        self._flipped_this_window[:] = flipped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")

    def _disturb(self, row: int, amount: float, cause: str) -> None:
        if not 0 <= row < self.rows:
            return  # edge rows have fewer neighbours
        self._disturbance[row] += amount
        if (
            self._disturbance[row] >= self.t_rh
            and not self._flipped_this_window[row]
        ):
            self._flipped_this_window[row] = True
            self.flips.append(
                BitFlipEvent(
                    row=row,
                    window=self.window,
                    disturbance=float(self._disturbance[row]),
                    cause=cause,
                )
            )

    def _record_flips(self, touched: np.ndarray, cause: str) -> None:
        over = touched[
            (self._disturbance[touched] >= self.t_rh)
            & ~self._flipped_this_window[touched]
        ]
        for row in over:
            self._flipped_this_window[row] = True
            self.flips.append(
                BitFlipEvent(
                    row=int(row),
                    window=self.window,
                    disturbance=float(self._disturbance[row]),
                    cause=cause,
                )
            )
