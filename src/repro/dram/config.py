"""DRAM geometry and timing configuration (paper Table 2).

All times are integer nanoseconds unless the name says otherwise. The
default instance reproduces the paper's baseline: DDR4-3200, 2 channels,
1 rank/channel, 16 banks/rank, 128K rows/bank of 8KB each (32GB total),
tRCD-tRP-tCAS = 14-14-14ns, tRC = 45ns, tRFC = 350ns, tREFI = 7.8us,
and a 64ms refresh window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import KB, NS_PER_MS


@dataclass(frozen=True)
class DRAMConfig:
    """Geometry plus timing of one memory system.

    The derived properties (``acts_per_refresh_window``, row/bank
    counts, transfer latencies) are the quantities the paper's analysis
    keys off, e.g. ACT_max = 1.36 million activations per bank per 64ms.
    """

    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 16
    rows_per_bank: int = 128 * 1024
    row_size_bytes: int = 8 * KB
    line_size_bytes: int = 64

    # Timing (ns).
    t_rcd: int = 14
    t_rp: int = 14
    t_cas: int = 14
    t_rc: int = 45
    t_rfc: int = 350
    t_refi: int = 7_800
    refresh_window_ns: int = 64 * NS_PER_MS
    # Row-open minimum (ACT->PRE). 0 means "derive as tRC - tRP", which
    # keeps any custom timing set self-consistent (tRC = tRAS + tRP).
    t_ras: int = 0
    # Rank-level ACT spacing windows. The simulator does not model
    # rank-level ACT scheduling, so these default to 0 ("unmodeled");
    # the protocol sanitizer checks them only when set positive.
    t_rrd: int = 0
    t_faw: int = 0

    # Bus: DDR4-3200 — 1.6GHz bus clock, data on both edges, 8B/beat.
    bus_clock_ghz: float = 1.6
    bus_bytes_per_beat: int = 8

    # Row-buffer management: "open" (paper baseline) keeps the row
    # open after an access; "closed" auto-precharges after each burst.
    page_policy: str = "open"

    def __post_init__(self) -> None:
        if self.rows_per_bank <= 0 or self.banks_per_rank <= 0:
            raise ValueError("geometry fields must be positive")
        if self.row_size_bytes % self.line_size_bytes != 0:
            raise ValueError("row size must be a whole number of lines")
        if self.t_rc < self.t_rcd:
            raise ValueError("tRC cannot be below tRCD")
        if self.t_ras < 0 or self.t_rrd < 0 or self.t_faw < 0:
            raise ValueError("timing windows cannot be negative")
        if self.t_ras and self.t_ras + self.t_rp > self.t_rc:
            raise ValueError("tRAS + tRP cannot exceed tRC")
        if self.page_policy not in ("open", "closed"):
            raise ValueError("page policy must be 'open' or 'closed'")

    @property
    def t_ras_ns(self) -> int:
        """Effective tRAS: the explicit value, else tRC - tRP (31ns for
        the paper's 14-14-14/45 timing)."""
        return self.t_ras if self.t_ras else self.t_rc - self.t_rp

    @property
    def banks_total(self) -> int:
        """Banks across all channels and ranks."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def lines_per_row(self) -> int:
        """Cache lines in one DRAM row (128 for 8KB rows / 64B lines)."""
        return self.row_size_bytes // self.line_size_bytes

    @property
    def capacity_bytes(self) -> int:
        """Total memory capacity in bytes."""
        return self.banks_total * self.rows_per_bank * self.row_size_bytes

    @property
    def row_id_bits(self) -> int:
        """Bits needed to name a row within a bank (17 for 128K rows)."""
        return (self.rows_per_bank - 1).bit_length()

    @property
    def line_transfer_ns(self) -> float:
        """Time to move one cache line over the data bus.

        At DDR data rate the bus moves ``bus_bytes_per_beat`` twice per
        bus-clock cycle; a 64B line therefore takes 4 bus cycles (2.5ns)
        on DDR4-3200, matching the paper's streaming arithmetic.
        """
        beats = self.line_size_bytes / self.bus_bytes_per_beat
        return beats / (2 * self.bus_clock_ghz)

    @property
    def row_stream_ns(self) -> float:
        """Time to stream a whole row between DRAM and a swap buffer.

        tRC for the activation plus back-to-back line transfers. The
        paper quotes ~365ns for an 8KB row on DDR4-3200.
        """
        return self.t_rc + self.lines_per_row * self.line_transfer_ns

    @property
    def row_swap_ns(self) -> float:
        """Latency of one full row swap (4 row transfers, ~1.46us)."""
        return 4 * self.row_stream_ns

    @property
    def refresh_overhead_fraction(self) -> float:
        """Fraction of wall time a rank spends in refresh (tRFC/tREFI)."""
        return self.t_rfc / self.t_refi

    @property
    def acts_per_refresh_window(self) -> int:
        """Max activations per bank in one refresh window (ACT_max).

        Activations are gated by tRC; time spent in refresh is deducted.
        For the default config this is ~1.36 million, the paper's A.
        """
        usable = self.refresh_window_ns * (1.0 - self.refresh_overhead_fraction)
        return int(usable // self.t_rc)

    def scaled(self, factor: int) -> "DRAMConfig":
        """Return a config whose refresh window is ``1/factor`` as long.

        Used by timing benches to run shorter epochs: swap *rates* per
        unit time are preserved when thresholds are scaled alongside
        (see DESIGN.md section 5).
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        return DRAMConfig(
            channels=self.channels,
            ranks_per_channel=self.ranks_per_channel,
            banks_per_rank=self.banks_per_rank,
            rows_per_bank=self.rows_per_bank,
            row_size_bytes=self.row_size_bytes,
            line_size_bytes=self.line_size_bytes,
            t_rcd=self.t_rcd,
            t_rp=self.t_rp,
            t_cas=self.t_cas,
            t_rc=self.t_rc,
            t_rfc=self.t_rfc,
            t_refi=self.t_refi,
            refresh_window_ns=self.refresh_window_ns // factor,
            t_ras=self.t_ras,
            t_rrd=self.t_rrd,
            t_faw=self.t_faw,
            bus_clock_ghz=self.bus_clock_ghz,
            bus_bytes_per_beat=self.bus_bytes_per_beat,
            page_policy=self.page_policy,
        )


DDR4_3200_DEFAULT = DRAMConfig()
