"""DRAM device model: geometry, timing, refresh, and the Row Hammer
disturbance fault model.

This package plays the role USIMM's DRAM model plays in the paper: it
knows nothing about schedulers or mitigations, only about what a DDR4
device does — banks with row buffers, timing constraints (tRC/tRCD/tRP/
tCAS/tRFC/tREFI), periodic refresh, and charge disturbance between
physically adjacent rows.
"""

from repro.dram.config import DRAMConfig, DDR4_3200_DEFAULT
from repro.dram.commands import Command, CommandKind
from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import Bank
from repro.dram.timing import BankTimingState
from repro.dram.device import Channel, Rank
from repro.dram.refresh import RefreshScheduler
from repro.dram.faults import BitFlipEvent, DisturbanceModel
from repro.dram.remap import RowScramble

__all__ = [
    "DRAMConfig",
    "DDR4_3200_DEFAULT",
    "Command",
    "CommandKind",
    "AddressMapper",
    "DecodedAddress",
    "Bank",
    "BankTimingState",
    "Channel",
    "Rank",
    "RefreshScheduler",
    "BitFlipEvent",
    "DisturbanceModel",
    "RowScramble",
]
