"""Rank and channel composition.

A ``Rank`` owns its banks and is the refresh unit (tRFC blocks the whole
rank). A ``Channel`` owns its ranks and the shared data bus — which is
why the RRS swap operation blocks the channel for its duration (the row
streaming occupies the bus, Section 4.4).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.dram.bank import Bank
from repro.dram.config import DRAMConfig
from repro.dram.faults import DisturbanceModel


class Rank:
    """One rank: the set of banks sharing refresh timing."""

    def __init__(
        self,
        config: DRAMConfig,
        channel: int = 0,
        index: int = 0,
        with_faults: bool = False,
        t_rh: float = 4800.0,
    ) -> None:
        self.config = config
        self.channel = channel
        self.index = index
        self.banks: List[Bank] = []
        for bank_index in range(config.banks_per_rank):
            disturbance = (
                DisturbanceModel(rows=config.rows_per_bank, t_rh=t_rh)
                if with_faults
                else None
            )
            self.banks.append(
                Bank(
                    config,
                    channel=channel,
                    rank=index,
                    index=bank_index,
                    disturbance=disturbance,
                )
            )

    def block_for_refresh(self, start_ns: float) -> float:
        """Hold every bank busy for tRFC; returns the end time."""
        end = start_ns + self.config.t_rfc
        for bank in self.banks:
            bank.timing.block_until(end)
        return end

    def end_window(self) -> None:
        """Refresh-window rollover for every bank in the rank."""
        for bank in self.banks:
            bank.end_window()

    @property
    def flip_count(self) -> int:
        """Bit flips recorded across all banks of the rank."""
        return sum(
            bank.disturbance.flip_count
            for bank in self.banks
            if bank.disturbance is not None
        )

    # ------------------------------------------------------------------
    # Snapshotable (repro.state): one entry per bank, pairing the
    # bank's own state with its fault model's (None when faults are
    # disabled for this run).
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            [
                (
                    bank.snapshot_state(),
                    None
                    if bank.disturbance is None
                    else bank.disturbance.snapshot_state(),
                )
                for bank in self.banks
            ],
        )

    def restore_state(self, state: tuple) -> None:
        (banks,) = state
        if len(banks) != len(self.banks):
            raise ValueError("bank count mismatch in rank snapshot")
        for bank, (bank_state, disturbance_state) in zip(self.banks, banks):
            bank.restore_state(bank_state)
            if disturbance_state is not None:
                if bank.disturbance is None:
                    raise ValueError(
                        "snapshot carries fault state but faults are disabled"
                    )
                bank.disturbance.restore_state(disturbance_state)


class Channel:
    """One channel: ranks plus the shared data bus."""

    def __init__(
        self,
        config: DRAMConfig,
        index: int = 0,
        with_faults: bool = False,
        t_rh: float = 4800.0,
    ) -> None:
        self.config = config
        self.index = index
        self.bus_free_ns = 0.0
        self.ranks: List[Rank] = [
            Rank(config, channel=index, index=r, with_faults=with_faults, t_rh=t_rh)
            for r in range(config.ranks_per_channel)
        ]

    def bank(self, rank: int, bank: int) -> Bank:
        """The bank at (rank, bank) on this channel."""
        return self.ranks[rank].banks[bank]

    def iter_banks(self) -> Iterator[Bank]:
        """All banks on this channel."""
        for rank in self.ranks:
            yield from rank.banks

    def reserve_bus(self, earliest_ns: float, duration_ns: float) -> float:
        """Claim the data bus for ``duration``; returns the start time."""
        start = max(earliest_ns, self.bus_free_ns)
        self.bus_free_ns = start + duration_ns
        return start

    def block_channel(self, start_ns: float, duration_ns: float) -> float:
        """Stall the bus and every bank (row-swap streaming); returns end."""
        end = max(start_ns, self.bus_free_ns) + duration_ns
        self.bus_free_ns = end
        for bank in self.iter_banks():
            bank.timing.block_until(end)
        return end

    def end_window(self) -> None:
        """Refresh-window rollover for every rank."""
        for rank in self.ranks:
            rank.end_window()

    # ------------------------------------------------------------------
    # Snapshotable (repro.state)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        return (
            self.bus_free_ns,
            [rank.snapshot_state() for rank in self.ranks],
        )

    def restore_state(self, state: tuple) -> None:
        bus_free_ns, ranks = state
        if len(ranks) != len(self.ranks):
            raise ValueError("rank count mismatch in channel snapshot")
        self.bus_free_ns = bus_free_ns
        for rank, rank_state in zip(self.ranks, ranks):
            rank.restore_state(rank_state)
