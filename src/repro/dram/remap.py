"""Vendor-internal row remapping (the paper's DRAM-mapping argument).

DRAM vendors map the row addresses the memory controller issues onto
internal wordlines through proprietary, undocumented scrambling
(Section 2.4: "DRAM chips often use proprietary mapping, and this
mapping may not be available within the memory controller"). Two rows
adjacent in controller address space need not be physically adjacent —
and vice versa.

This matters asymmetrically:

* **Victim-focused mitigation** must refresh the *physical* neighbours
  of an aggressor. Computing ``row +- 1`` on controller addresses
  refreshes the wrong wordlines when a scramble is present, silently
  voiding the defense (reproduced in the attack tests).
* **RRS** never needs adjacency: it swaps the aggressor with a random
  row, so a scramble is irrelevant — Table 7's "works without knowing
  DRAM mapping" row.

:class:`RowScramble` models the common vendor schemes: identity, bit
flips on low row bits (the classic +-1 <-> +-3 confusion), and a keyed
pseudo-random permutation.
"""

from __future__ import annotations

from typing import Iterable

from repro.utils.hashing import keyed_hash


class RowScramble:
    """Bijective controller-row -> internal-wordline mapping."""

    SCHEMES = ("identity", "bitflip", "keyed")

    def __init__(self, rows: int, scheme: str = "bitflip", key: int = 0) -> None:
        if rows <= 0 or rows & (rows - 1):
            raise ValueError("row count must be a positive power of two")
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; known: {self.SCHEMES}")
        self.rows = rows
        self.scheme = scheme
        self.key = key
        if scheme == "keyed":
            # A keyed Feistel-style permutation over the row index.
            self._forward = self._build_keyed_permutation()
            self._inverse = [0] * rows
            for logical, physical in enumerate(self._forward):
                self._inverse[physical] = logical

    # ------------------------------------------------------------------
    def to_internal(self, row: int) -> int:
        """The internal wordline a controller row address selects."""
        self._check(row)
        if self.scheme == "identity":
            return row
        if self.scheme == "bitflip":
            # Vendors commonly invert low address bits in alternating
            # sub-blocks: XOR bit1 into bit0 for odd 4-row groups.
            if (row >> 2) & 1:
                return row ^ 0b11
            return row
        return self._forward[row]

    def to_controller(self, wordline: int) -> int:
        """Inverse mapping: which controller address selects a wordline."""
        self._check(wordline)
        if self.scheme == "identity":
            return wordline
        if self.scheme == "bitflip":
            if (wordline >> 2) & 1:
                return wordline ^ 0b11
            return wordline
        return self._inverse[wordline]

    def internal_neighbors(self, row: int, distance: int = 1) -> Iterable[int]:
        """Controller addresses of a row's *physical* neighbours.

        This is the information a victim-focused defense would need the
        vendor to disclose.
        """
        wordline = self.to_internal(row)
        for offset in (-distance, distance):
            neighbor = wordline + offset
            if 0 <= neighbor < self.rows:
                yield self.to_controller(neighbor)

    # ------------------------------------------------------------------
    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")

    def _build_keyed_permutation(self) -> list:
        # Sort rows by a keyed hash: a uniform bijection, stable per key.
        return sorted(range(self.rows), key=lambda r: keyed_hash(r, self.key))
