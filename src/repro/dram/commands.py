"""DDR command vocabulary.

The memory controller legalizes and timestamps these; the bank model
applies their state effects. Only the commands the paper's system needs
are modelled: activate, precharge, column read/write, refresh, and the
row-stream transfers used by the RRS swap engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandKind(enum.Enum):
    """The DDR4 command subset used by the simulator."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"
    ROW_STREAM = "STREAM"  # whole-row transfer for swap buffers


@dataclass(frozen=True)
class Command:
    """One timestamped DDR command targeting a bank/row/column."""

    kind: CommandKind
    channel: int
    rank: int
    bank: int
    row: int = 0
    column: int = 0
    issue_time_ns: float = 0.0

    def __str__(self) -> str:
        return (
            f"{self.kind.value}@{self.issue_time_ns:.0f}ns "
            f"ch{self.channel}/rk{self.rank}/ba{self.bank}/row{self.row}"
        )
