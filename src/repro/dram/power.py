"""Device-level DRAM power model (the role USIMM's power model plays).

Standard IDD-current methodology (Micron DDR4 power technical note):
each operation's energy is the excess current it draws over the standby
baseline, times VDD, times its duration:

* activate/precharge pair:  (IDD0 - IDD3N) * VDD * tRC
* read burst (one line):    (IDD4R - IDD3N) * VDD * t_burst
* write burst (one line):   (IDD4W - IDD3N) * VDD * t_burst
* refresh burst:            (IDD5B - IDD2N) * VDD * tRFC
* background:               IDD3N * VDD while any bank is open,
                            IDD2N * VDD precharged (we use a single
                            configurable active fraction)

The Table 6 bench feeds controller activity counters through this model
to decompose baseline power and the row-swap overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig


@dataclass(frozen=True)
class IDDCurrents:
    """DDR4-3200 8Gb-device-class currents (mA) and supply (V)."""

    vdd: float = 1.2
    idd0: float = 55.0  # one-bank ACT-PRE cycling
    idd2n: float = 30.0  # precharge standby
    idd3n: float = 40.0  # active standby
    idd4r: float = 140.0  # read burst
    idd4w: float = 130.0  # write burst
    idd5b: float = 190.0  # refresh burst


class DramPowerModel:
    """Energy/power accounting for one rank."""

    def __init__(
        self,
        config: DRAMConfig = DRAMConfig(),
        currents: IDDCurrents = IDDCurrents(),
    ) -> None:
        self.config = config
        self.currents = currents

    # ------------------------------------------------------------------
    # Per-operation energies (picojoules)
    # ------------------------------------------------------------------
    @property
    def energy_act_pre_pj(self) -> float:
        """One activate+precharge pair."""
        c = self.currents
        return (c.idd0 - c.idd3n) * c.vdd * self.config.t_rc

    @property
    def energy_read_pj(self) -> float:
        """One 64B read burst."""
        c = self.currents
        return (c.idd4r - c.idd3n) * c.vdd * self.config.line_transfer_ns

    @property
    def energy_write_pj(self) -> float:
        """One 64B write burst."""
        c = self.currents
        return (c.idd4w - c.idd3n) * c.vdd * self.config.line_transfer_ns

    @property
    def energy_refresh_pj(self) -> float:
        """One tRFC refresh burst."""
        c = self.currents
        return (c.idd5b - c.idd2n) * c.vdd * self.config.t_rfc

    @property
    def energy_row_swap_pj(self) -> float:
        """One full row swap: 4 ACT/PRE pairs + 4 rows of line bursts
        (half read out, half written back)."""
        lines = self.config.lines_per_row
        return 4 * self.energy_act_pre_pj + 2 * lines * (
            self.energy_read_pj + self.energy_write_pj
        )

    # ------------------------------------------------------------------
    # Power over an interval
    # ------------------------------------------------------------------
    def background_power_mw(self, active_fraction: float = 0.5) -> float:
        """Standby power with a given open-bank duty cycle."""
        if not 0.0 <= active_fraction <= 1.0:
            raise ValueError("active fraction must be in [0, 1]")
        c = self.currents
        current = c.idd3n * active_fraction + c.idd2n * (1 - active_fraction)
        return current * c.vdd

    def operation_power_mw(
        self,
        activations: int,
        reads: int,
        writes: int,
        refresh_bursts: int,
        elapsed_s: float,
    ) -> float:
        """Dynamic power from the operation counts over an interval."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        total_pj = (
            activations * self.energy_act_pre_pj
            + reads * self.energy_read_pj
            + writes * self.energy_write_pj
            + refresh_bursts * self.energy_refresh_pj
        )
        return total_pj / elapsed_s * 1e-9  # pJ/s -> mW

    def rank_power_mw(
        self,
        activations: int,
        reads: int,
        writes: int,
        refresh_bursts: int,
        elapsed_s: float,
        active_fraction: float = 0.5,
    ) -> float:
        """Total rank power: background + operations."""
        return self.background_power_mw(active_fraction) + self.operation_power_mw(
            activations, reads, writes, refresh_bursts, elapsed_s
        )
