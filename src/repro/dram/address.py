"""Physical-address to DRAM-coordinate mapping.

The mapper implements the open-page-friendly interleaving USIMM uses:
low-order bits select the byte within a line, then the channel, then the
bank, then the column (line within the row), and the high bits select
the row. Consecutive lines therefore stream within one row, and
consecutive rows of the same bank are ``channels * banks`` rows apart in
the physical address space — which is why the memory controller cannot
know DRAM adjacency without this mapping, one of the paper's arguments
against victim-focused mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Tuple

import numpy as np

from repro.dram.config import DRAMConfig


def _log2_exact(value: int, name: str) -> int:
    bits = value.bit_length() - 1
    if value <= 0 or (1 << bits) != value:
        raise ValueError(f"{name} must be a power of two, got {value}")
    return bits


@dataclass(frozen=True, slots=True)
class DecodedAddress:
    """DRAM coordinates for one physical address."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self) -> tuple:
        """Hashable identity of the bank this address lives in."""
        return (self.channel, self.rank, self.bank)


class DecodedColumns(NamedTuple):
    """Columnar result of :meth:`AddressMapper.decode_batch`.

    One int64 array per DRAM coordinate, plus ``flat_bank`` — the
    system-wide bank ordinal ``(channel * ranks + rank) * banks + bank``
    that indexes :attr:`AddressMapper.bank_key_table`.
    """

    channel: np.ndarray
    rank: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    column: np.ndarray
    flat_bank: np.ndarray


class MutableDecoded:
    """Reusable, field-compatible stand-in for :class:`DecodedAddress`.

    The columnar fast path services exactly one request at a time, so a
    core can overwrite a single instance per request instead of
    allocating a frozen ``DecodedAddress``. ``bank_key`` is a plain
    attribute (set from the mapper's shared tuple table) where
    ``DecodedAddress`` computes it — consumers read both identically.
    """

    __slots__ = ("channel", "rank", "bank", "row", "column", "bank_key")

    def __init__(self) -> None:
        self.channel = 0
        self.rank = 0
        self.bank = 0
        self.row = 0
        self.column = 0
        self.bank_key: Tuple[int, int, int] = (0, 0, 0)


class AddressMapper:
    """Bidirectional physical-address <-> (channel, rank, bank, row, col)."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._line_bits = _log2_exact(config.line_size_bytes, "line size")
        self._channel_bits = _log2_exact(config.channels, "channel count")
        self._rank_bits = _log2_exact(config.ranks_per_channel, "rank count")
        self._bank_bits = _log2_exact(config.banks_per_rank, "bank count")
        self._column_bits = _log2_exact(config.lines_per_row, "lines per row")
        self._row_bits = _log2_exact(config.rows_per_bank, "rows per bank")
        # decode() runs once per request in the simulator's inner loop:
        # fold the field layout into absolute shift/mask pairs so a
        # decode is five shift-and-mask operations with no config
        # attribute traffic.
        self._channel_shift = self._line_bits
        self._rank_shift = self._channel_shift + self._channel_bits
        self._bank_shift = self._rank_shift + self._rank_bits
        self._column_shift = self._bank_shift + self._bank_bits
        self._row_shift = self._column_shift + self._column_bits
        self._channel_mask = config.channels - 1
        self._rank_mask = config.ranks_per_channel - 1
        self._bank_mask = config.banks_per_rank - 1
        self._column_mask = config.lines_per_row - 1
        self._row_mask = config.rows_per_bank - 1
        # Shared (channel, rank, bank) tuples indexed by the flat bank
        # ordinal: the fast path hands these out instead of building a
        # fresh tuple per request.
        self.bank_key_table: Tuple[Tuple[int, int, int], ...] = tuple(
            (channel, rank, bank)
            for channel in range(config.channels)
            for rank in range(config.ranks_per_channel)
            for bank in range(config.banks_per_rank)
        )

    def decode(self, address: int) -> DecodedAddress:
        """Split a physical byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return DecodedAddress(
            channel=(address >> self._channel_shift) & self._channel_mask,
            rank=(address >> self._rank_shift) & self._rank_mask,
            bank=(address >> self._bank_shift) & self._bank_mask,
            row=(address >> self._row_shift) & self._row_mask,
            column=(address >> self._column_shift) & self._column_mask,
        )

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (byte offset within the line is 0)."""
        bits = decoded.row
        bits = (bits << self._column_bits) | decoded.column
        bits = (bits << self._bank_bits) | decoded.bank
        bits = (bits << self._rank_bits) | decoded.rank
        bits = (bits << self._channel_bits) | decoded.channel
        return bits << self._line_bits

    def decode_batch(self, addresses: np.ndarray) -> DecodedColumns:
        """Vectorized :meth:`decode` over an int64 address array.

        Element-for-element identical to the scalar method (the
        property test in ``tests/dram`` asserts it); the whole batch is
        five shift-and-mask passes plus the flat-bank combine.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size and int(addresses.min()) < 0:
            raise ValueError("address must be non-negative")
        channel = (addresses >> self._channel_shift) & self._channel_mask
        rank = (addresses >> self._rank_shift) & self._rank_mask
        bank = (addresses >> self._bank_shift) & self._bank_mask
        row = (addresses >> self._row_shift) & self._row_mask
        column = (addresses >> self._column_shift) & self._column_mask
        flat_bank = (channel << (self._rank_bits + self._bank_bits)) | (
            rank << self._bank_bits
        ) | bank
        return DecodedColumns(
            channel=channel,
            rank=rank,
            bank=bank,
            row=row,
            column=column,
            flat_bank=flat_bank,
        )

    def encode_batch(
        self,
        channel: np.ndarray,
        rank: np.ndarray,
        bank: np.ndarray,
        row: np.ndarray,
        column: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`encode` over coordinate arrays (int64)."""
        bits = np.asarray(row, dtype=np.int64)
        bits = (bits << self._column_bits) | column
        bits = (bits << self._bank_bits) | bank
        bits = (bits << self._rank_bits) | rank
        bits = (bits << self._channel_bits) | channel
        return bits << self._line_bits

    def row_address(self, channel: int, rank: int, bank: int, row: int) -> int:
        """Physical address of the first line of a given row."""
        return self.encode(
            DecodedAddress(channel=channel, rank=rank, bank=bank, row=row, column=0)
        )
