"""Physical-address to DRAM-coordinate mapping.

The mapper implements the open-page-friendly interleaving USIMM uses:
low-order bits select the byte within a line, then the channel, then the
bank, then the column (line within the row), and the high bits select
the row. Consecutive lines therefore stream within one row, and
consecutive rows of the same bank are ``channels * banks`` rows apart in
the physical address space — which is why the memory controller cannot
know DRAM adjacency without this mapping, one of the paper's arguments
against victim-focused mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig


def _log2_exact(value: int, name: str) -> int:
    bits = value.bit_length() - 1
    if value <= 0 or (1 << bits) != value:
        raise ValueError(f"{name} must be a power of two, got {value}")
    return bits


@dataclass(frozen=True, slots=True)
class DecodedAddress:
    """DRAM coordinates for one physical address."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self) -> tuple:
        """Hashable identity of the bank this address lives in."""
        return (self.channel, self.rank, self.bank)


class AddressMapper:
    """Bidirectional physical-address <-> (channel, rank, bank, row, col)."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._line_bits = _log2_exact(config.line_size_bytes, "line size")
        self._channel_bits = _log2_exact(config.channels, "channel count")
        self._rank_bits = _log2_exact(config.ranks_per_channel, "rank count")
        self._bank_bits = _log2_exact(config.banks_per_rank, "bank count")
        self._column_bits = _log2_exact(config.lines_per_row, "lines per row")
        self._row_bits = _log2_exact(config.rows_per_bank, "rows per bank")
        # decode() runs once per request in the simulator's inner loop:
        # fold the field layout into absolute shift/mask pairs so a
        # decode is five shift-and-mask operations with no config
        # attribute traffic.
        self._channel_shift = self._line_bits
        self._rank_shift = self._channel_shift + self._channel_bits
        self._bank_shift = self._rank_shift + self._rank_bits
        self._column_shift = self._bank_shift + self._bank_bits
        self._row_shift = self._column_shift + self._column_bits
        self._channel_mask = config.channels - 1
        self._rank_mask = config.ranks_per_channel - 1
        self._bank_mask = config.banks_per_rank - 1
        self._column_mask = config.lines_per_row - 1
        self._row_mask = config.rows_per_bank - 1

    def decode(self, address: int) -> DecodedAddress:
        """Split a physical byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError("address must be non-negative")
        return DecodedAddress(
            channel=(address >> self._channel_shift) & self._channel_mask,
            rank=(address >> self._rank_shift) & self._rank_mask,
            bank=(address >> self._bank_shift) & self._bank_mask,
            row=(address >> self._row_shift) & self._row_mask,
            column=(address >> self._column_shift) & self._column_mask,
        )

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (byte offset within the line is 0)."""
        bits = decoded.row
        bits = (bits << self._column_bits) | decoded.column
        bits = (bits << self._bank_bits) | decoded.bank
        bits = (bits << self._rank_bits) | decoded.rank
        bits = (bits << self._channel_bits) | decoded.channel
        return bits << self._line_bits

    def row_address(self, channel: int, rank: int, bank: int, row: int) -> int:
        """Physical address of the first line of a given row."""
        return self.encode(
            DecodedAddress(channel=channel, rank=rank, bank=bank, row=row, column=0)
        )
