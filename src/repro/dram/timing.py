"""Per-bank timing state machine.

Tracks when the next activate / column access may legally issue on a
bank, enforcing tRC (ACT-to-ACT), tRCD (ACT-to-CAS), tRP (PRE), and tCAS
(CAS-to-data). The memory controller asks this object "if I issue a
request for row R at time t, when is the data back, and what commands
did that imply?" — which is exactly the granularity USIMM's scheduler
reasons at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.config import DRAMConfig


@dataclass(slots=True)
class AccessOutcome:
    """Result of servicing one column access on a bank."""

    start_ns: float
    data_ns: float
    row_buffer_hit: bool
    activated: bool


@dataclass(slots=True)
class BankTimingState:
    """Mutable DDR timing state for one bank.

    ``observer``, when set, receives ``(kind, row, time_ns)`` for every
    command the bank issues — the hook the protocol checker
    (:mod:`repro.mem.cmdlog`), the runtime sanitizer
    (:mod:`repro.check.sanitizer`), and the event tracer
    (:mod:`repro.obs`) use to watch the command stream. Multiple
    consumers stack via :func:`chain_observer`; observers must only
    read state — they can never affect the timing math.
    """

    config: DRAMConfig
    open_row: int = -1  # -1 encodes a precharged (closed) bank
    last_act_ns: float = field(default=-1e18)
    ready_ns: float = 0.0  # earliest time a new command may issue
    observer: object = None
    # Timing scalars cached off the (frozen) config: access() runs once
    # per request, and t_ras_ns is a computing property.
    _t_cas: float = field(init=False, repr=False, default=0.0)
    _t_rcd: float = field(init=False, repr=False, default=0.0)
    _t_rp: float = field(init=False, repr=False, default=0.0)
    _t_rc: float = field(init=False, repr=False, default=0.0)
    _t_ras: float = field(init=False, repr=False, default=0.0)
    _closed_page: bool = field(init=False, repr=False, default=False)

    def __post_init__(self) -> None:
        config = self.config
        self._t_cas = config.t_cas
        self._t_rcd = config.t_rcd
        self._t_rp = config.t_rp
        self._t_rc = config.t_rc
        self._t_ras = config.t_ras_ns
        self._closed_page = config.page_policy == "closed"

    def earliest_start(self, now_ns: float) -> float:
        """Earliest instant a new request could begin on this bank."""
        return max(now_ns, self.ready_ns)

    def access(self, row: int, now_ns: float) -> AccessOutcome:
        """Service a read/write to ``row`` beginning no earlier than now.

        Open-page policy: the row buffer is left open after the access.
        Returns timing; the caller accounts bus occupancy separately.
        """
        now = self.ready_ns
        start = now_ns if now_ns > now else now
        observer = self.observer
        if self.open_row == row:
            data = start + self._t_cas
            self.ready_ns = data
            if observer is not None:
                observer("CAS", row, start)
            return AccessOutcome(start_ns=start, data_ns=data, row_buffer_hit=True, activated=False)

        # Row-buffer miss: precharge if a row is open, then activate.
        # A PRE may not issue before the open row has been active for
        # tRAS; with self-consistent timing (tRAS = tRC - tRP) the ACT
        # schedule is still governed by tRC.
        act_at = start
        if self.open_row >= 0:
            pre_at = max(start, self.last_act_ns + self._t_ras)
            if observer is not None:
                observer("PRE", self.open_row, pre_at)
            act_at = pre_at + self._t_rp
        act_at = max(act_at, self.last_act_ns + self._t_rc)
        data = act_at + self._t_rcd + self._t_cas
        self.open_row = row
        self.last_act_ns = act_at
        self.ready_ns = data
        if observer is not None:
            observer("ACT", row, act_at)
            observer("CAS", row, act_at + self._t_rcd)
        if self._closed_page:
            # Auto-precharge: the bank closes after the burst, once the
            # row has been open for tRAS.
            pre_at = max(data, act_at + self._t_ras)
            self._emit("PRE", row, pre_at)
            self.open_row = -1
            self.ready_ns = pre_at + self._t_rp
        return AccessOutcome(start_ns=start, data_ns=data, row_buffer_hit=False, activated=True)

    def activate_only(self, row: int, now_ns: float) -> float:
        """Issue a bare ACT (used by attack drivers); returns ACT time."""
        start = self.earliest_start(now_ns)
        act_at = start
        if self.open_row >= 0:
            pre_at = max(start, self.last_act_ns + self._t_ras)
            self._emit("PRE", self.open_row, pre_at)
            act_at = pre_at + self._t_rp
        act_at = max(act_at, self.last_act_ns + self._t_rc)
        self.open_row = row
        self.last_act_ns = act_at
        self.ready_ns = act_at + self._t_rcd
        self._emit("ACT", row, act_at)
        return act_at

    def precharge(self, now_ns: float) -> float:
        """Close the row buffer; returns when the bank is idle again."""
        start = self.earliest_start(now_ns)
        if self.open_row >= 0:
            pre_at = max(start, self.last_act_ns + self._t_ras)
            self._emit("PRE", self.open_row, pre_at)
            self.open_row = -1
            self.ready_ns = pre_at + self._t_rp
        return self.ready_ns

    def block_until(self, until_ns: float) -> None:
        """Hold the bank busy (refresh, row-swap streaming)."""
        self.ready_ns = max(self.ready_ns, until_ns)

    # ------------------------------------------------------------------
    # Snapshotable (repro.state) — also the block-kernel state exchange
    # (repro.mem.block_kernel): the fused kernel evolves these three
    # scalars on flat arrays and hands them back via
    # :meth:`restore_state`. The kernel never inlines a bank whose
    # command stream has an observer attached, so the exchange is only
    # ever applied to unobserved open-page banks.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> "tuple[int, float, float]":
        """``(open_row, last_act_ns, ready_ns)`` — the full open-page
        timing state (the cached ``_t_*`` scalars are config)."""
        return self.open_row, self.last_act_ns, self.ready_ns

    def restore_state(self, state: "tuple[int, float, float]") -> None:
        self.open_row, self.last_act_ns, self.ready_ns = state

    def _emit(self, kind: str, row: int, time_ns: float) -> None:
        if self.observer is not None:
            self.observer(kind, row, time_ns)


def chain_observer(timing: BankTimingState, probe) -> None:
    """Attach ``probe`` to ``timing`` without displacing an existing
    observer (both run, existing first). Shared by the protocol
    sanitizer and the obs tracer so either — or both — can watch the
    same bank."""
    existing = timing.observer
    if existing is None:
        timing.observer = probe
        return

    def chained(kind: str, row: int, time_ns: float) -> None:
        existing(kind, row, time_ns)
        probe(kind, row, time_ns)

    timing.observer = chained
