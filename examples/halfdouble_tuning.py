"""Tune the Half-Double attack: how much direct dosing does it need?

The published Half-Double recipe hammers the near-aggressor and adds a
light direct "dose" of the far aggressor. This example sweeps the dose
interval against in-DRAM TRR and against RRS, measuring the activations
each configuration needs to flip a bit — reproducing the attack-economy
view behind the paper's claim that victim-focused mitigation merely
*changes* the cheapest pattern while RRS removes it.

Run:  python examples/halfdouble_tuning.py
"""

from repro.analysis.report import render_table
from repro.attacks import AttackHarness, HalfDoubleAttack
from repro.core import RRSConfig, RandomizedRowSwap
from repro.dram import DRAMConfig
from repro.mitigations import TargetedRowRefresh

T_RH = 480
ROWS = 128 * 1024
BUDGET = 500_000
DOSE_INTERVALS = (32, 64, 128, 512, 10**9)


def _dram():
    return DRAMConfig(
        channels=1, banks_per_rank=1, rows_per_bank=ROWS, row_size_bytes=1024
    )


def _rrs():
    t_rrs = T_RH // 6
    return RandomizedRowSwap(
        RRSConfig(
            t_rh=T_RH,
            t_rrs=t_rrs,
            window_activations=1_300_000,
            rows_per_bank=ROWS,
            tracker_entries=1_300_000 // t_rrs,
            rit_capacity_tuples=2 * (1_300_000 // t_rrs),
        ),
        _dram(),
    )


def _cost(mitigation, dose_interval):
    harness = AttackHarness(mitigation, _dram(), t_rh=T_RH)
    result = harness.run(
        HalfDoubleAttack(victim=9000, dose_interval=dose_interval).rows(),
        max_activations=BUDGET,
    )
    if result.succeeded:
        return f"{result.activations:,} ACTs"
    return f"no flip in {BUDGET:,}"


def main() -> None:
    rows = []
    for interval in DOSE_INTERVALS:
        label = "none (pure refresh-assist)" if interval >= BUDGET else f"1/{interval}"
        rows.append(
            [label, _cost(TargetedRowRefresh(rows_per_bank=ROWS), interval),
             _cost(_rrs(), interval)]
        )
    print(
        render_table(
            ["Far-aggressor dose", "vs TRR (flip cost)", "vs RRS"],
            rows,
            title=f"Half-Double dose tuning (T_RH={T_RH})",
        )
    )
    print(
        "\nAgainst TRR every dosing level eventually flips — heavier "
        "dosing just gets there sooner.\nAgainst RRS no dosing level "
        "succeeds: the near-aggressor keeps being relocated, so the\n"
        "refresh-assist stream never accumulates at one victim."
    )


if __name__ == "__main__":
    main()
