"""Privilege escalation through page-table bit flips — and its cure.

The paper's threat model (Section 2.1): an unprivileged attacker
hammers DRAM until a bit flips inside a page-table entry, making one of
its own PTEs point at a frame it does not own. This example runs the
classic sprayed-page-table exploit end to end against the unprotected
system, then against RRS.

Run:  python examples/privilege_escalation.py
"""

from repro.core import RRSConfig, RandomizedRowSwap
from repro.dram import DRAMConfig
from repro.software import PageTableAttackScenario

T_RH = 480  # scaled threshold; mechanics are threshold-relative
BUDGET = 1_000_000


def rrs_defense(dram: DRAMConfig) -> RandomizedRowSwap:
    t_rrs = T_RH // 6
    config = RRSConfig(
        t_rh=T_RH,
        t_rrs=t_rrs,
        window_activations=1_300_000,
        rows_per_bank=dram.rows_per_bank,
        tracker_entries=1_300_000 // t_rrs,
        rit_capacity_tuples=2 * (1_300_000 // t_rrs),
    )
    return RandomizedRowSwap(config, dram)


def main() -> None:
    print("attacker layout: page-table rows interleaved with hammerable rows\n")

    unprotected = PageTableAttackScenario(t_rh=T_RH, seed=1)
    outcome = unprotected.run(max_activations=BUDGET)
    print(f"unprotected DRAM : {outcome}")
    for entry in outcome.corrupted_entries:
        print(f"    corrupted PTE: {entry}")

    dram = DRAMConfig(
        channels=1, banks_per_rank=1, rows_per_bank=128 * 1024, row_size_bytes=8192
    )
    protected = PageTableAttackScenario(
        mitigation=rrs_defense(dram), dram=dram, t_rh=T_RH, seed=1
    )
    outcome = protected.run(max_activations=BUDGET)
    print(f"with RRS         : {outcome}")
    print(
        "\nRRS relocates the hammered aggressors long before any row "
        "reaches the flip threshold,\nso the page tables never see a "
        "single disturbed bit."
    )


if __name__ == "__main__":
    main()
