"""Watch the optimal adaptive attacker fight RRS (paper Section 5.3).

Runs the random-row/T-activations attack strategy from Figure 7
against a live RRS instance at a *deliberately weakened* configuration
(tiny bank, k=3) so the birthday-paradox success is observable within
seconds, then shows why the real configuration (128K rows, k=6) pushes
the expected attack time to years.

Run:  python examples/adaptive_attacker.py
"""

from repro.analysis.security import attack_iterations
from repro.attacks import AttackHarness, RRSAdaptiveAttack
from repro.core import RRSConfig, RandomizedRowSwap
from repro.dram import DRAMConfig
from repro.utils.units import format_seconds

WEAK_ROWS = 1024  # vs the real 128K
WEAK_K = 3  # vs the real 6
T_RH = 480


def weakened_rrs():
    t_rrs = T_RH // WEAK_K
    dram = DRAMConfig(
        channels=1, banks_per_rank=1, rows_per_bank=WEAK_ROWS, row_size_bytes=1024
    )
    config = RRSConfig(
        t_rh=T_RH,
        t_rrs=t_rrs,
        window_activations=1_300_000,
        rows_per_bank=WEAK_ROWS,
        tracker_entries=1_300_000 // t_rrs // 4,
        rit_capacity_tuples=2 * (1_300_000 // t_rrs // 4),
        exclude_tracked_destinations=False,
    )
    return RandomizedRowSwap(config, dram), dram, t_rrs


def main() -> None:
    rrs, dram, t_rrs = weakened_rrs()
    print(
        f"weakened RRS: {WEAK_ROWS} rows, T_RRS={t_rrs}, k={WEAK_K} "
        f"(real design: 131072 rows, k=6)\n"
    )
    predicted = attack_iterations(
        t_rrs, t_rrs * WEAK_K, rows_per_bank=WEAK_ROWS, acts_per_window=1_300_000
    )
    print(f"model prediction: ~{predicted:.2g} windows per success (Eq. 3)")

    harness = AttackHarness(rrs, dram, t_rh=T_RH, distance2_coupling=0.0)
    attack = RRSAdaptiveAttack(t_rrs=t_rrs, rows_per_bank=WEAK_ROWS, seed=3)
    result = harness.run(attack.rows(), max_windows=100)
    if result.succeeded:
        flip = result.flips[0]
        print(
            f"attack SUCCEEDED in window {flip.window + 1} "
            f"({result.activations:,} ACTs, {result.swaps:,} swaps): "
            f"physical row {flip.row} accumulated {flip.disturbance:.0f} "
            f"disturbance"
        )
    else:
        print(
            f"attack failed within {result.windows} windows "
            f"({result.activations:,} ACTs, {result.swaps:,} swaps)"
        )

    real = attack_iterations(800, 4800)
    print(
        f"\nreal configuration (N=128K, k=6): {real:.2e} windows "
        f"~ {format_seconds(real * 0.064)} of continuous attack (paper: 3.8 years)"
    )


if __name__ == "__main__":
    main()
