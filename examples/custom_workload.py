"""Define a custom workload and evaluate defenses on it.

Shows the full user-facing flow: declare a WorkloadSpec with your own
footprint / memory intensity / hot-row profile, synthesize traces, and
compare the no-defense baseline, Graphene (victim-focused), and RRS on
identical streams.

Run:  python examples/custom_workload.py
"""

from repro import RRSConfig, RandomizedRowSwap
from repro.analysis.perf import records_for_windows, run_workload
from repro.analysis.report import render_table
from repro.dram import DRAMConfig
from repro.mitigations import Graphene, NoMitigation
from repro.workloads import WorkloadSpec

SCALE = 32


def main() -> None:
    # A made-up key-value-store-like service: moderate footprint, hot
    # index pages that hammer a few hundred rows.
    spec = WorkloadSpec(
        name="kvstore",
        suite="CUSTOM",
        footprint_gb=1.2,
        mpki=6.5,
        act800_rows=300,
        ipc_hint=1.4,
    )
    print(
        f"custom workload: {spec.name} — footprint {spec.footprint_gb}GB, "
        f"MPKI {spec.mpki}, {spec.act800_rows} hot rows\n"
    )

    dram = DRAMConfig().scaled(SCALE)
    defenses = {
        "baseline": NoMitigation(),
        "Graphene": Graphene(
            t_rh=4800 // SCALE,
            mitigation_threshold=12,
            window_activations=dram.acts_per_refresh_window,
        ),
        "RRS": RandomizedRowSwap(
            RRSConfig.for_threshold(4800, DRAMConfig()).scaled(SCALE), dram
        ),
    }

    records = records_for_windows(spec, SCALE, max_records=90_000)
    results = {
        name: run_workload(spec, defense, scale=SCALE, records_per_core=records)
        for name, defense in defenses.items()
    }
    baseline_ipc = results["baseline"].ipc
    rows = [
        [
            name,
            f"{metrics.ipc:.3f}",
            f"{metrics.ipc / baseline_ipc:.4f}",
            metrics.swaps,
            metrics.victim_refreshes,
        ]
        for name, metrics in results.items()
    ]
    print(
        render_table(
            ["Defense", "IPC", "Normalized", "Swaps", "Victim refreshes"],
            rows,
            title="Custom workload under three configurations",
        )
    )
    print(
        "\nGraphene pays with victim refreshes, RRS with row swaps — "
        "but only RRS also stops Half-Double-class patterns "
        "(see examples/attack_gallery.py)."
    )


if __name__ == "__main__":
    main()
