"""Quickstart: protect a memory system with Randomized Row-Swap.

Runs the bzip2 workload (one of the paper's most swap-active) through
the full-system simulator twice — unprotected baseline, then with RRS —
and reports the defense's cost: normalized IPC, swaps performed, and
time the channel spent streaming rows.

Run:  python examples/quickstart.py
"""

from repro import RRSConfig, RandomizedRowSwap
from repro.analysis.perf import records_for_windows, run_pair
from repro.dram import DRAMConfig
from repro.utils.units import format_time_ns
from repro.workloads import get_workload

# Timing runs use a 1/32-length refresh window with thresholds, table
# sizes and swap latency co-scaled (see DESIGN.md §5); swap *rates* and
# slowdown fractions match the full-scale system.
SCALE = 32


def main() -> None:
    spec = get_workload("bzip2")
    print(f"workload: {spec.name} (MPKI {spec.mpki}, {spec.act800_rows} hot rows)")

    dram = DRAMConfig().scaled(SCALE)
    rrs_config = RRSConfig.for_threshold(4800, DRAMConfig()).scaled(SCALE)
    print(
        f"RRS design: T_RRS={rrs_config.t_rrs * SCALE} (scaled {rrs_config.t_rrs}), "
        f"tracker {rrs_config.tracker_entries} entries, "
        f"RIT {rrs_config.rit_capacity_tuples} tuples"
    )

    records = records_for_windows(spec, SCALE, max_records=60_000)
    result = run_pair(
        spec,
        lambda: RandomizedRowSwap(rrs_config, dram),
        scale=SCALE,
        records_per_core=records,
    )

    print(f"\nbaseline IPC : {result.baseline.ipc:.3f}")
    print(f"RRS IPC      : {result.defended.ipc:.3f}")
    print(f"normalized   : {result.normalized_performance:.4f} "
          f"({result.slowdown_percent:.2f}% slowdown; paper: ~5% for bzip2)")
    print(f"row swaps    : {result.defended.swaps} "
          f"({result.swaps_per_window:.0f} per window)")
    print(f"channel time in swaps: {format_time_ns(result.defended.swap_blocked_ns)}")


if __name__ == "__main__":
    main()
