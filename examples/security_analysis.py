"""Security analysis: how safe is a given RRS configuration?

Walks the paper's Section 5 pipeline for any Row Hammer threshold:
derive T_RRS, compute the adaptive attacker's duty cycle, evaluate
Equation 3 for the expected attack time, and validate the statistical
model with a small-scale Monte Carlo.

Run:  python examples/security_analysis.py [T_RH]
"""

import sys

from repro.analysis.buckets import BucketsAndBalls
from repro.analysis.report import render_table
from repro.analysis.security import attack_iterations, duty_cycle
from repro.core import RRSConfig
from repro.utils.units import format_seconds


def main() -> None:
    t_rh = int(sys.argv[1]) if len(sys.argv) > 1 else 4800
    print(f"Row Hammer threshold under analysis: {t_rh}\n")

    rows = []
    for k in range(4, 9):
        t_rrs = t_rh // k
        if t_rrs < 1:
            continue
        config = RRSConfig.for_threshold(t_rh, k=k)
        d = duty_cycle(config.t_rrs)
        iterations = attack_iterations(t_rrs, t_rrs * k)
        rows.append(
            [
                f"{t_rrs} (k={k})",
                config.tracker_entries,
                config.rit_capacity_tuples,
                f"{d:.3f}",
                f"{iterations:.2e}",
                format_seconds(iterations * 0.064),
            ]
        )
    print(
        render_table(
            ["T_RRS", "Tracker entries", "RIT tuples", "Duty cycle", "AT_iter", "Attack time"],
            rows,
            title="Design space: swap threshold vs security (Eq. 3)",
        )
    )
    print(
        "\nThe paper picks k=6 (T_RRS=800 at T_RH=4.8K): several years of "
        "continuous attack per expected success."
    )

    # The randomization domain matters: security scales with the number
    # of rows the swap destination is drawn from (the insight behind
    # the follow-on AQUA's quarantine region sizing).
    t_rrs = t_rh // 6
    rows_table = []
    for rows in (16 * 1024, 64 * 1024, 128 * 1024, 512 * 1024):
        iterations = attack_iterations(t_rrs, t_rrs * 6, rows_per_bank=rows)
        rows_table.append(
            [f"{rows // 1024}K", f"{iterations:.2e}", format_seconds(iterations * 0.064)]
        )
    print()
    print(
        render_table(
            ["Rows per bank (N)", "AT_iter (k=6)", "Attack time"],
            rows_table,
            title="Sensitivity to the randomization domain",
        )
    )

    # Validate the binomial-tail model at a simulable scale.
    experiment = BucketsAndBalls(
        buckets=1024, balls_per_window=700, target_balls=4, seed=11
    )
    analytic = experiment.analytic_window_probability()
    measured = experiment.success_probability(trials=800)
    print(
        f"\nModel validation (N=1024, B=700, k=4): analytic "
        f"P={analytic:.4f}, Monte Carlo P={measured:.4f}"
    )


if __name__ == "__main__":
    main()
