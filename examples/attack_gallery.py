"""Attack gallery: every Row Hammer pattern against every defense.

Reproduces the paper's motivating story (Figure 1) as a live matrix:
classic single-/double-sided hammering, the TRRespass many-sided
pattern, and Google's Half-Double, each thrown at the unprotected
baseline, in-DRAM TRR, Graphene, idealized victim refresh, and RRS.

Run:  python examples/attack_gallery.py
"""

from repro.analysis.report import render_table
from repro.attacks import (
    AttackHarness,
    DoubleSidedAttack,
    HalfDoubleAttack,
    ManySidedAttack,
    SingleSidedAttack,
)
from repro.core import RRSConfig, RandomizedRowSwap
from repro.dram import DRAMConfig
from repro.mitigations import (
    Graphene,
    IdealVictimRefresh,
    NoMitigation,
    TargetedRowRefresh,
)

# Scaled threshold keeps each cell fast; the mechanics are
# threshold-relative (see tests/attacks/test_matrix.py).
T_RH = 480
ROWS = 128 * 1024
ACTS_BUDGET = 400_000


def _dram():
    return DRAMConfig(
        channels=1, banks_per_rank=1, rows_per_bank=ROWS, row_size_bytes=1024
    )


def _defenses():
    t_rrs = T_RH // 6
    return {
        "none": lambda: NoMitigation(),
        "TRR": lambda: TargetedRowRefresh(rows_per_bank=ROWS),
        "Graphene": lambda: Graphene(
            t_rh=T_RH, mitigation_threshold=T_RH // 4, rows_per_bank=ROWS
        ),
        "Ideal-VFM": lambda: IdealVictimRefresh(
            t_rh=T_RH, mitigation_threshold=64, rows_per_bank=ROWS
        ),
        "RRS": lambda: RandomizedRowSwap(
            RRSConfig(
                t_rh=T_RH,
                t_rrs=t_rrs,
                window_activations=400_000,
                rows_per_bank=ROWS,
                tracker_entries=400_000 // t_rrs,
                rit_capacity_tuples=2 * (400_000 // t_rrs),
            ),
            _dram(),
        ),
    }


def _attacks():
    # (attack, classic_physics): classic patterns are evaluated under
    # blast-radius-1 physics with side-effect-free refresh (the setting
    # victim-focused defenses are designed for); Half-Double uses the
    # realistic physics it exploits (refreshes disturb neighbours,
    # weak direct distance-2 coupling).
    return {
        "single-sided": (SingleSidedAttack(10_000), True),
        "double-sided": (DoubleSidedAttack(10_000), True),
        "many-sided (TRRespass)": (
            ManySidedAttack([10_000 + 4 * i for i in range(9)]),
            True,
        ),
        "Half-Double": (HalfDoubleAttack(10_000, dose_interval=64), False),
    }


def main() -> None:
    defenses = _defenses()
    rows = []
    for attack_name, (attack, classic) in _attacks().items():
        cells = [attack_name]
        for defense_name, make_defense in defenses.items():
            harness = AttackHarness(
                make_defense(),
                _dram(),
                t_rh=T_RH,
                distance2_coupling=0.0 if classic else 0.016,
                refresh_disturbs_neighbors=not classic,
            )
            result = harness.run(attack.rows(), max_activations=ACTS_BUDGET)
            if result.succeeded:
                kilo_acts = max(1, result.activations // 1000)
                cells.append(f"FLIP@{kilo_acts}K acts")
            else:
                cells.append("safe")
        rows.append(cells)
    print(
        render_table(
            ["Attack \\ Defense", *defenses.keys()],
            rows,
            title=f"Row Hammer attack gallery (T_RH={T_RH}, budget {ACTS_BUDGET:,} ACTs)",
        )
    )
    print(
        "\nReading: tracker-based victim refresh (Graphene, Ideal-VFM) "
        "stops the classic patterns\nbut falls to Half-Double, whose "
        "flips ride on the mitigation's own refreshes. In-DRAM\nTRR "
        "also loses to multi-aggressor patterns (the TRRespass "
        "finding). RRS — the only\naggressor-focused action here — "
        "survives everything: paper Table 7 / Figure 1."
    )


if __name__ == "__main__":
    main()
