"""Trace pipeline: raw accesses -> LLC filter -> trace file -> replay.

The workflow the paper's artifact uses (Pin capture, cache filtering,
USIMM replay), end to end on synthetic raw accesses: generate a raw
stream whose working set slightly exceeds the LLC (the hmmer/bzip2
phenomenon), filter it through the shared cache, persist the post-LLC
trace, and replay it through the full-system simulator under RRS.

Run:  python examples/trace_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import RRSConfig, RandomizedRowSwap, SystemConfig, SystemSimulator
from repro.dram import DRAMConfig
from repro.mem.cache import CacheConfig, LastLevelCache
from repro.utils.rng import DeterministicRng
from repro.workloads import (
    RawAccess,
    filter_through_llc,
    read_trace,
    write_trace,
)

SCALE = 64


def raw_accesses(count: int, seed: int = 0):
    """A thrashing loop: cycles a working set 1.25x the LLC size."""
    llc_lines = CacheConfig().capacity_bytes // 64
    working_set = int(1.25 * llc_lines)
    rng = DeterministicRng(seed, "raw")
    cursor = 0
    for _ in range(count):
        if rng.random() < 0.9:
            line = cursor
            cursor = (cursor + 1) % working_set
        else:
            line = rng.randint(0, working_set)
        yield RawAccess(
            instruction_gap=rng.randint(20, 60),
            address=line * 64,
            is_write=rng.random() < 0.25,
        )


def main() -> None:
    cache = LastLevelCache(CacheConfig())
    post_llc = list(filter_through_llc(raw_accesses(400_000), cache))
    print(
        f"raw accesses : 400,000 -> post-LLC records: {len(post_llc):,} "
        f"(LLC miss rate {cache.stats.miss_rate:.2f}, "
        f"{cache.stats.writebacks:,} writebacks)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "thrash.trace"
        write_trace(path, post_llc)
        print(f"trace file   : {path.name} ({path.stat().st_size // 1024}KB)")

        dram = DRAMConfig().scaled(SCALE)
        rrs = RandomizedRowSwap(
            RRSConfig.for_threshold(4800, DRAMConfig()).scaled(SCALE), dram
        )
        sim = SystemSimulator(SystemConfig(dram=dram, cores=1), mitigation=rrs)
        metrics = sim.run([read_trace(path)], workload="thrash")

    print(
        f"replay (RRS) : IPC {metrics.ipc:.3f}, "
        f"{metrics.accesses:,} memory accesses, "
        f"{metrics.activations:,} ACTs, {metrics.swaps} swaps"
    )
    print(
        "\nA working set slightly larger than the LLC misses almost "
        "everywhere — the bzip2/hmmer\nbehaviour the paper calls out as "
        "the source of their high swap counts."
    )


if __name__ == "__main__":
    main()
