"""Measure baseline IPC per workload and emit ``ipc_hint`` values.

The synthetic generators need each workload's real (simulated) IPC to
convert per-window activation targets into hot-access probabilities.
This script runs the no-mitigation baseline for every Table 3 workload,
iterating twice (the hint feeds back into the generator), and prints a
table to paste into ``src/repro/workloads/suites.py``.

Usage: python scripts/calibrate_ipc.py [scale] [records_cap]
"""

from __future__ import annotations

import dataclasses
import sys
import time

from repro.analysis.perf import records_for_windows, run_workload
from repro.workloads.suites import WORKLOAD_TABLE


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    cap = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    hints = {}
    for spec in WORKLOAD_TABLE:
        current = spec
        ipc = 0.0
        for _ in range(2):  # iterate: the hint changes the access mix
            records = min(cap, records_for_windows(current, scale))
            start = time.time()
            metrics = run_workload(current, scale=scale, records_per_core=records)
            ipc = metrics.ipc
            current = dataclasses.replace(spec, ipc_hint=round(ipc, 2))
            elapsed = time.time() - start
        hints[spec.name] = round(ipc, 2)
        print(f"{spec.name:>12}: ipc={ipc:.2f}  ({records} rec/core, {elapsed:.0f}s)")
    print()
    for name, value in hints.items():
        print(f'    "{name}": {value},')


if __name__ == "__main__":
    main()
