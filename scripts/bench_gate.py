#!/usr/bin/env python3
"""CI bench gate: fail when serial throughput regresses vs the baseline.

Compares the ``serial_requests_per_second`` headline of a fresh
``benchmarks/results/BENCH_throughput.json`` (produced by running
``bench_throughput.py``) against the committed baseline — by default
the version of that file at ``HEAD``, so the gate works after the
bench run has overwritten the working-tree copy.

The gate fails when the fresh number falls more than ``--tolerance``
(default 20%) below the baseline. The tolerance absorbs shared-runner
noise that the benchmark's min-of-N timing cannot: CI machines differ
in clock speed and neighbours, so only a regression well outside that
band is attributable to the code. Genuine hot-path regressions land
far beyond 20%; see the ``history`` array in the results file for the
trajectory.

Both runs must use the same ``records_per_core`` — requests/second is
a rate, but short runs amortize startup differently, so comparing
mismatched run lengths would make the gate flaky. Run the bench with
``REPRO_BENCH_RECORDS`` matching the baseline (the CI workflow reads
it from the committed file).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results" / "BENCH_throughput.json"
METRIC = "serial_requests_per_second"


def _committed_baseline() -> dict:
    """The results file as committed at HEAD."""
    probe = subprocess.run(
        ["git", "show", f"HEAD:{RESULTS.relative_to(REPO_ROOT).as_posix()}"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if probe.returncode != 0:
        raise SystemExit(
            f"bench-gate: cannot read committed baseline: {probe.stderr.strip()}"
        )
    return json.loads(probe.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: the committed results file at HEAD)",
    )
    parser.add_argument(
        "--fresh",
        default=str(RESULTS),
        help=f"fresh results JSON to gate (default: {RESULTS})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression before failing (default: 0.20)",
    )
    args = parser.parse_args(argv)

    if args.baseline is None:
        baseline = _committed_baseline()
        baseline_name = "HEAD:benchmarks/results/BENCH_throughput.json"
    else:
        baseline = json.loads(Path(args.baseline).read_text())
        baseline_name = args.baseline
    fresh_path = Path(args.fresh)
    if not fresh_path.exists():
        raise SystemExit(
            f"bench-gate: no fresh results at {fresh_path}; "
            "run benchmarks/bench_throughput.py first"
        )
    fresh = json.loads(fresh_path.read_text())

    if fresh["records_per_core"] != baseline["records_per_core"]:
        raise SystemExit(
            "bench-gate: run lengths differ — baseline records_per_core="
            f"{baseline['records_per_core']}, fresh="
            f"{fresh['records_per_core']}; rerun the bench with "
            f"REPRO_BENCH_RECORDS={baseline['records_per_core']}"
        )

    base = baseline[METRIC]
    now = fresh[METRIC]
    floor = base * (1.0 - args.tolerance)
    ratio = now / base
    print(
        f"bench-gate: serial {now:,.0f} req/s vs baseline {base:,.0f} req/s "
        f"({baseline_name}) = {ratio:.2f}x; floor {floor:,.0f} req/s "
        f"(tolerance {args.tolerance:.0%})"
    )
    if now < floor:
        print(
            f"bench-gate: FAIL — serial throughput regressed "
            f"{1.0 - ratio:.0%} (> {args.tolerance:.0%} allowed)",
            file=sys.stderr,
        )
        return 1
    print("bench-gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
