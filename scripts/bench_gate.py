#!/usr/bin/env python3
"""CI bench gate: fail when bench throughput regresses vs the baseline.

Two gated baselines, both compared against the committed version of
the results file at ``HEAD`` (so the gate works after a bench run has
overwritten the working-tree copy):

* ``BENCH_throughput.json`` — the ``serial_requests_per_second``
  headline from ``bench_throughput.py``, plus (once a committed
  baseline carries it) the ``controller_requests_per_second`` number
  from the controller-kernel phase;
* ``BENCH_mitigation.json`` — per-mitigation
  ``batched_activations_per_second`` from ``bench_mitigation.py``
  (skipped with a note when either side lacks the file, so the gate
  still runs on branches that predate it).

The gate fails when a fresh number falls more than ``--tolerance``
(default 20%) below its baseline. The tolerance absorbs shared-runner
noise that the benchmark's min-of-N timing cannot: CI machines differ
in clock speed and neighbours, so only a regression well outside that
band is attributable to the code. Genuine hot-path regressions land
far beyond 20%; see the ``history`` array in the results files for the
trajectory.

Both runs must use the same ``records_per_core`` — requests/second is
a rate, but short runs amortize startup differently, so comparing
mismatched run lengths would make the gate flaky. Run the bench with
``REPRO_BENCH_RECORDS`` matching the baseline (the CI workflow reads
it from the committed file).

``--ledger`` switches the gate to a third, statistical mode: instead
of comparing bench files, it judges the newest sweep recorded in the
run ledger against the ledger's own history via
:mod:`repro.obs.regress` (median/MAD robust z-scores per workload,
mitigation, and scale group). Error-tier findings (``REG001``) fail
the gate; warn and advice findings are printed but never build-
failing — mirroring the ``repro check`` severity contract.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results" / "BENCH_throughput.json"
MITIGATION_RESULTS = REPO_ROOT / "benchmarks" / "results" / "BENCH_mitigation.json"
METRIC = "serial_requests_per_second"
CONTROLLER_METRIC = "controller_requests_per_second"
MITIGATION_METRIC = "batched_activations_per_second"


def _committed_baseline(path: Path = RESULTS) -> dict:
    """A results file as committed at HEAD."""
    probe = subprocess.run(
        ["git", "show", f"HEAD:{path.relative_to(REPO_ROOT).as_posix()}"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if probe.returncode != 0:
        raise SystemExit(
            f"bench-gate: cannot read committed baseline: {probe.stderr.strip()}"
        )
    return json.loads(probe.stdout)


def _committed_mitigation_baseline() -> dict | None:
    """HEAD's mitigation baseline, or None when it predates the file."""
    probe = subprocess.run(
        ["git", "show", f"HEAD:{MITIGATION_RESULTS.relative_to(REPO_ROOT).as_posix()}"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if probe.returncode != 0:
        return None
    return json.loads(probe.stdout)


def _gate(label: str, base: float, now: float, tolerance: float) -> bool:
    """Print one gate line; True when ``now`` clears the floor."""
    floor = base * (1.0 - tolerance)
    ratio = now / base if base else float("inf")
    print(
        f"bench-gate: {label} {now:,.0f} vs baseline {base:,.0f} "
        f"= {ratio:.2f}x; floor {floor:,.0f} (tolerance {tolerance:.0%})"
    )
    if now < floor:
        print(
            f"bench-gate: FAIL — {label} regressed {1.0 - ratio:.0%} "
            f"(> {tolerance:.0%} allowed)",
            file=sys.stderr,
        )
        return False
    return True


def _gate_mitigations(args) -> bool:
    """Gate every mitigation's batched activation rate; True on pass.

    Missing files (either side) skip the gate rather than failing: the
    mitigation baseline arrived later than the throughput one, and a
    bench run may legitimately produce only the throughput file.
    """
    if args.mitigation_baseline is None:
        baseline = _committed_mitigation_baseline()
        baseline_name = "HEAD:benchmarks/results/BENCH_mitigation.json"
    else:
        baseline = json.loads(Path(args.mitigation_baseline).read_text())
        baseline_name = args.mitigation_baseline
    fresh_path = Path(args.mitigation_fresh)
    if baseline is None:
        print("bench-gate: no committed mitigation baseline yet — skipping")
        return True
    if not fresh_path.exists():
        print(
            f"bench-gate: no fresh mitigation results at {fresh_path} — "
            "run benchmarks/bench_mitigation.py to gate the activation path"
        )
        return True
    fresh = json.loads(fresh_path.read_text())
    if fresh["records_per_core"] != baseline["records_per_core"]:
        raise SystemExit(
            "bench-gate: mitigation run lengths differ — baseline "
            f"records_per_core={baseline['records_per_core']}, fresh="
            f"{fresh['records_per_core']}; rerun the bench with "
            f"REPRO_BENCH_RECORDS={baseline['records_per_core']}"
        )
    ok = True
    for name, base_row in sorted(baseline["mitigations"].items()):
        fresh_row = fresh["mitigations"].get(name)
        if fresh_row is None:
            print(
                f"bench-gate: FAIL — mitigation {name!r} present in "
                f"{baseline_name} but missing from the fresh run",
                file=sys.stderr,
            )
            ok = False
            continue
        ok &= _gate(
            f"{name} {MITIGATION_METRIC}",
            base_row[MITIGATION_METRIC],
            fresh_row[MITIGATION_METRIC],
            args.tolerance,
        )
    return ok


def _gate_ledger(args) -> int:
    """Statistical gate over the sweep run ledger; process exit code."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs.ledger import default_ledger_path, read_ledger, split_latest_run
    from repro.obs.regress import detect_drift

    ledger_path = Path(args.ledger_path) if args.ledger_path else default_ledger_path()
    entries = read_ledger(ledger_path)
    if not entries:
        print(f"bench-gate: ledger {ledger_path} is empty — nothing to gate")
        return 0
    history, fresh = split_latest_run(entries)
    findings = detect_drift(
        history,
        fresh,
        warn_z=args.warn_z,
        error_z=args.error_z,
        min_history=args.min_history,
        path=str(ledger_path),
    )
    print(
        f"bench-gate: ledger mode — {len(fresh)} fresh point(s) vs "
        f"{len(history)} historical entries in {ledger_path}"
    )
    errors = 0
    for finding in findings:
        stream = sys.stderr if finding.severity == "error" else sys.stdout
        print(f"bench-gate: {finding}", file=stream)
        errors += finding.severity == "error"
    if errors:
        print(
            f"bench-gate: FAIL — {errors} error-tier drift finding(s)",
            file=sys.stderr,
        )
        return 1
    print("bench-gate: OK (no error-tier drift)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: the committed results file at HEAD)",
    )
    parser.add_argument(
        "--fresh",
        default=str(RESULTS),
        help=f"fresh results JSON to gate (default: {RESULTS})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression before failing (default: 0.20)",
    )
    parser.add_argument(
        "--mitigation-baseline",
        default=None,
        help="mitigation baseline JSON (default: committed file at HEAD)",
    )
    parser.add_argument(
        "--mitigation-fresh",
        default=str(MITIGATION_RESULTS),
        help=f"fresh mitigation results to gate (default: {MITIGATION_RESULTS})",
    )
    parser.add_argument(
        "--ledger",
        action="store_true",
        help="gate the newest sweep in the run ledger against its history "
        "instead of comparing bench result files",
    )
    parser.add_argument(
        "--ledger-path",
        default=None,
        help="ledger JSONL path (default: $REPRO_LEDGER or the cache dir)",
    )
    parser.add_argument("--warn-z", type=float, default=3.5)
    parser.add_argument("--error-z", type=float, default=6.0)
    parser.add_argument(
        "--min-history",
        type=int,
        default=4,
        help="distinct historical runs required before judging a group",
    )
    args = parser.parse_args(argv)

    if args.ledger:
        return _gate_ledger(args)

    if args.baseline is None:
        baseline = _committed_baseline()
        baseline_name = "HEAD:benchmarks/results/BENCH_throughput.json"
    else:
        baseline = json.loads(Path(args.baseline).read_text())
        baseline_name = args.baseline
    fresh_path = Path(args.fresh)
    if not fresh_path.exists():
        raise SystemExit(
            f"bench-gate: no fresh results at {fresh_path}; "
            "run benchmarks/bench_throughput.py first"
        )
    fresh = json.loads(fresh_path.read_text())

    if fresh["records_per_core"] != baseline["records_per_core"]:
        raise SystemExit(
            "bench-gate: run lengths differ — baseline records_per_core="
            f"{baseline['records_per_core']}, fresh="
            f"{fresh['records_per_core']}; rerun the bench with "
            f"REPRO_BENCH_RECORDS={baseline['records_per_core']}"
        )

    print(f"bench-gate: throughput baseline {baseline_name}")
    ok = _gate(
        f"serial {METRIC}", baseline[METRIC], fresh[METRIC], args.tolerance
    )
    # Controller phase (service_block microbenchmark): gated only once
    # a committed baseline carries the number — older baselines predate
    # the phase, and a skip keeps the gate usable across that boundary.
    base_controller = baseline.get(CONTROLLER_METRIC)
    fresh_controller = fresh.get(CONTROLLER_METRIC)
    if base_controller is None:
        print("bench-gate: no committed controller-phase baseline yet — skipping")
    elif fresh_controller is None:
        print(
            "bench-gate: fresh results lack the controller phase — "
            "rerun benchmarks/bench_throughput.py to gate it"
        )
    else:
        ok &= _gate(
            f"controller {CONTROLLER_METRIC}",
            base_controller,
            fresh_controller,
            args.tolerance,
        )
    ok &= _gate_mitigations(args)
    if not ok:
        return 1
    print("bench-gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
