#!/usr/bin/env python3
"""End-to-end dashboard smoke: tiny sweep -> ledger -> `repro report`.

Runs a 4-point sweep (2 workloads x 2 seeds, a few hundred records
each) into a scratch ledger and result cache, renders the HTML
dashboard through the real `repro report` CLI path, then re-extracts
the embedded JSON payload and validates it against the ledger schema.
CI runs this as the ``report-smoke`` job and uploads the dashboard as
an artifact; `make report-smoke` is the local equivalent.

Exit code is non-zero on any failure: sweep, render, or validation.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    out = Path(argv[0]) if argv else Path("report-smoke.html")
    with tempfile.TemporaryDirectory(prefix="repro-report-smoke-") as scratch:
        ledger_path = Path(scratch) / "ledger.jsonl"
        os.environ["REPRO_LEDGER"] = str(ledger_path)

        from repro.cli import main as repro_main
        from repro.exec import MitigationSpec, ResultCache, SweepPoint, SweepRunner
        from repro.obs.reportgen import validate_report_file

        points = [
            SweepPoint(
                workload=workload,
                mitigation=MitigationSpec.none(),
                scale=32,
                records_per_core=500,
                cores=2,
                seed=seed,
            )
            for workload in ("stream", "hmmer")
            for seed in (0, 1)
        ]
        runner = SweepRunner(
            jobs=1,
            cache=ResultCache(root=Path(scratch) / "cache"),
            progress=True,
        )
        runner.run(points, label="report-smoke")
        print(f"report-smoke: swept {runner.stats.points} points")

        code = repro_main(
            [
                "report",
                "--out",
                str(out),
                "--bench-dir",
                str(REPO_ROOT / "benchmarks" / "results"),
                "--title",
                "repro report smoke",
            ]
        )
        if code != 0:
            print(f"report-smoke: `repro report` exited {code}", file=sys.stderr)
            return code

        payload = validate_report_file(out)
        if len(payload["entries"]) != len(points):
            print(
                f"report-smoke: expected {len(points)} ledger entries in the "
                f"payload, found {len(payload['entries'])}",
                file=sys.stderr,
            )
            return 1
        print(
            f"report-smoke: OK — {out} validated "
            f"({len(payload['entries'])} entries, schema "
            f"v{payload['schema_version']})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
