"""Run the full reproduction pipeline (the artifact's run_artifact.sh).

Executes the test suite, then every benchmark (each regenerating one of
the paper's tables/figures into ``benchmarks/results/``), and prints a
final index of the archived results with per-stage wall-clock totals.

Usage: python scripts/run_all_experiments.py [--full] [--jobs N]
       --full   sets REPRO_FULL=1 (all 78 workloads where applicable)
       --jobs N fans sweep-shaped benchmarks out over N worker
                processes (forwarded to the SweepRunner via REPRO_JOBS)
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run(label: str, args: list, env: dict, timings: list) -> bool:
    print(f"\n=== {label} ===")
    start = time.time()
    result = subprocess.run(args, cwd=REPO, env=env)
    elapsed = time.time() - start
    timings.append((label, elapsed, result.returncode == 0))
    print(f"=== {label}: {'OK' if result.returncode == 0 else 'FAILED'} "
          f"({elapsed:.0f}s) ===")
    return result.returncode == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="set REPRO_FULL=1 (full workload populations)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="sweep worker processes (sets REPRO_JOBS)")
    args = parser.parse_args()

    env = dict(os.environ)
    if args.full:
        env["REPRO_FULL"] = "1"
    if args.jobs > 0:
        env["REPRO_JOBS"] = str(args.jobs)

    timings: list = []
    ok = True
    ok &= run("unit/integration/property tests",
              [sys.executable, "-m", "pytest", "tests/", "-q"], env, timings)
    ok &= run("benchmarks (tables & figures)",
              [sys.executable, "-m", "pytest", "benchmarks/",
               "--benchmark-only", "-q"], env, timings)

    results = sorted((REPO / "benchmarks" / "results").glob("*.txt"))
    print("\narchived results:")
    for path in results:
        print(f"  benchmarks/results/{path.name}")

    print("\nstage wall-clock totals:")
    for label, elapsed, stage_ok in timings:
        status = "ok" if stage_ok else "FAILED"
        print(f"  {elapsed:8.1f}s  {status:6s}  {label}")
    print(f"  {sum(elapsed for _, elapsed, _ in timings):8.1f}s  total"
          f"          (jobs={env.get('REPRO_JOBS', '1')})")

    print("\nsee EXPERIMENTS.md for the paper-vs-measured discussion")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
