"""Run the full reproduction pipeline (the artifact's run_artifact.sh).

Executes the test suite, then every benchmark (each regenerating one of
the paper's tables/figures into ``benchmarks/results/``), and prints a
final index of the archived results.

Usage: python scripts/run_all_experiments.py [--full]
       --full sets REPRO_FULL=1 (all 78 workloads where applicable)
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run(label: str, args: list, env: dict) -> bool:
    print(f"\n=== {label} ===")
    start = time.time()
    result = subprocess.run(args, cwd=REPO, env=env)
    print(f"=== {label}: {'OK' if result.returncode == 0 else 'FAILED'} "
          f"({time.time() - start:.0f}s) ===")
    return result.returncode == 0


def main() -> int:
    env = dict(os.environ)
    if "--full" in sys.argv:
        env["REPRO_FULL"] = "1"
    ok = True
    ok &= run("unit/integration/property tests",
              [sys.executable, "-m", "pytest", "tests/", "-q"], env)
    ok &= run("benchmarks (tables & figures)",
              [sys.executable, "-m", "pytest", "benchmarks/",
               "--benchmark-only", "-q"], env)

    results = sorted((REPO / "benchmarks" / "results").glob("*.txt"))
    print("\narchived results:")
    for path in results:
        print(f"  benchmarks/results/{path.name}")
    print("\nsee EXPERIMENTS.md for the paper-vs-measured discussion")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
