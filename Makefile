PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint check check-flow checkpoint-smoke bench bench-smoke bench-gate trace-smoke report-smoke profile experiments clean-cache

test:  ## tier-1 suite (unit/integration/property)
	$(PYTHON) -m pytest -x -q

lint:  ## ruff + mypy (configs in pyproject.toml)
	ruff check src tests
	mypy

check:  ## repro.check pillars: linter, salt drift, sanitizer smoke, flow engine
	$(PYTHON) -m repro check

check-flow:  ## flow engine only: entropy, oracle drift, hot-path, snapshot coverage
	$(PYTHON) -m repro check --flow

checkpoint-smoke:  ## checkpoint round-trip oracle on a tiny run (bit-identical resume)
	$(PYTHON) -m repro checkpoint stream rrs --records 600 --cores 2 --verify
	$(PYTHON) -m repro checkpoint stream none --records 600 --cores 2 --verify

bench:  ## regenerate every table & figure (slow; honours REPRO_JOBS)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-smoke:  ## throughput microbenchmark with a tiny request budget
	REPRO_BENCH_RECORDS=800 REPRO_CACHE=0 $(PYTHON) -m pytest \
		benchmarks/bench_throughput.py --benchmark-only -q

bench-gate:  ## fail when serial throughput regresses vs the committed baseline
	$(PYTHON) scripts/bench_gate.py

trace-smoke:  ## tiny traced run; validates the Perfetto JSON it writes
	$(PYTHON) -m repro trace hmmer rrs --records 2000 --out trace-smoke.json

report-smoke:  ## tiny sweep -> ledger -> HTML dashboard; validates embedded JSON
	$(PYTHON) scripts/report_smoke.py report-smoke.html

profile:  ## cProfile the hot path (WORKLOAD=name DEFENSE=name PROFILE_FLAGS=--trace)
	$(PYTHON) -m repro profile $(or $(WORKLOAD),hmmer) $(or $(DEFENSE),rrs) \
		--records 8000 $(PROFILE_FLAGS)

experiments:  ## full pipeline with a result index (use JOBS=N to fan out)
	$(PYTHON) scripts/run_all_experiments.py $(if $(JOBS),--jobs $(JOBS))

clean-cache:  ## drop every cached sweep result
	$(PYTHON) -c "from repro.exec import ResultCache; print(ResultCache().clear(), 'entries removed')"
